//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Journal.h"

#include <atomic>

using namespace g80;

//===--- Tracer ---------------------------------------------------------------//

Expected<Tracer> Tracer::toFile(const std::string &Path) {
  Tracer T;
  T.Epoch = std::chrono::steady_clock::now();
  T.OS.open(Path, std::ios::trunc);
  if (!T.OS)
    return makeDiag(ErrorCode::JournalError, Stage::Parse,
                    "cannot open trace file '" + Path + "' for writing");
  T.OS << "{\"type\":\"meta\",\"g80trace\":1,\"clock\":\"steady_us\"}\n";
  return T;
}

uint64_t Tracer::nowUs() const {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - Epoch)
                      .count());
}

unsigned Tracer::threadId() {
  // Caller holds M.
  auto [It, Inserted] =
      ThreadIds.emplace(std::this_thread::get_id(), unsigned(ThreadIds.size()));
  (void)Inserted;
  return It->second;
}

void Tracer::recordSpan(std::string_view Name, uint64_t ConfigIndex, int Depth,
                        uint64_t StartUs, uint64_t DurUs) {
  std::lock_guard<std::mutex> L(*M);
  ++Spans;
  if (!OS.is_open())
    return;
  OS << "{\"type\":\"span\",\"name\":\"" << jsonEscape(Name) << "\"";
  if (ConfigIndex != NoConfig)
    OS << ",\"idx\":" << ConfigIndex;
  OS << ",\"tid\":" << threadId() << ",\"depth\":" << Depth
     << ",\"start_us\":" << StartUs << ",\"dur_us\":" << DurUs << "}\n";
}

void Tracer::addCounter(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> L(*M);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

uint64_t Tracer::counterValue(std::string_view Name) const {
  std::lock_guard<std::mutex> L(*M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

uint64_t Tracer::spanCount() const {
  std::lock_guard<std::mutex> L(*M);
  return Spans;
}

void Tracer::close() {
  if (!M) // Moved-from shell: nothing to flush.
    return;
  std::lock_guard<std::mutex> L(*M);
  if (!OS.is_open())
    return;
  for (const auto &[Name, Value] : Counters)
    OS << "{\"type\":\"counter\",\"name\":\"" << jsonEscape(Name)
       << "\",\"value\":" << Value << "}\n";
  OS.flush();
  OS.close();
}

//===--- Active tracer and span RAII ------------------------------------------//

namespace {

std::atomic<Tracer *> ActiveTracer{nullptr};

/// Per-thread span nesting level, for the "depth" field.
thread_local int SpanDepth = 0;

} // namespace

Tracer *g80::activeTracer() {
  return ActiveTracer.load(std::memory_order_acquire);
}

ScopedTracer::ScopedTracer(Tracer *T) {
  Prev = ActiveTracer.exchange(T, std::memory_order_acq_rel);
}

ScopedTracer::~ScopedTracer() {
  ActiveTracer.store(Prev, std::memory_order_release);
}

TraceSpan::TraceSpan(const char *Name, uint64_t ConfigIndex)
    : T(activeTracer()), Name(Name), Idx(ConfigIndex) {
  if (!T)
    return;
  Depth = ++SpanDepth;
  StartUs = T->nowUs();
}

TraceSpan::~TraceSpan() {
  if (!T)
    return;
  uint64_t EndUs = T->nowUs();
  T->recordSpan(Name, Idx, Depth, StartUs, EndUs - StartUs);
  --SpanDepth;
}

void g80::traceCount(std::string_view Name, uint64_t Delta) {
  if (Tracer *T = activeTracer())
    T->addCounter(Name, Delta);
}
