//===- examples/sad_explore.cpp - Exploring a 700-point space ------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The SAD kernel's space (Fig. 4) is the largest of the paper's four —
// too big to measure exhaustively in practice.  This example shows the
// intended workflow on it:
//   1. compute static metrics for all ~700 valid configurations
//      (seconds of compile-time analysis, no execution),
//   2. measure only the Pareto subset,
//   3. inspect what the metrics say about the winner.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "kernels/Sad.h"
#include "support/Format.h"
#include "support/TextTable.h"

#include <algorithm>
#include <iostream>

using namespace g80;

int main() {
  SadApp App(SadApp::benchProblem());
  MachineModel Machine = MachineModel::geForce8800Gtx();
  SearchEngine Engine(App, Machine);

  SearchOutcome Pruned = Engine.paretoPruned();
  std::cout << "SAD: " << Pruned.ValidCount << " valid configurations; "
            << "metrics computed for all, only "
            << Pruned.Candidates.size() << " measured ("
            << fmtPercent(Pruned.spaceReduction()) << " pruned)\n\n";

  // Rank the measured candidates.
  std::vector<size_t> Order = Pruned.Candidates;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Pruned.Evals[A].TimeSeconds < Pruned.Evals[B].TimeSeconds;
  });

  TextTable T;
  T.setHeader({"rank", "config", "time (ms)", "Instr/thread", "Regions",
               "W_TB", "B_SM"});
  unsigned Rank = 1;
  for (size_t I : Order) {
    const ConfigEval &E = Pruned.Evals[I];
    T.addRow({fmtInt(Rank++), App.space().describe(E.Point),
              fmtDouble(E.TimeSeconds * 1e3, 3),
              fmtInt(E.Metrics.Profile.DynInstrs),
              fmtInt(E.Metrics.Profile.regions()),
              fmtInt(E.Metrics.Occ.WarpsPerBlock),
              fmtInt(E.Metrics.Occ.BlocksPerSM)});
    if (Rank > 10)
      break;
  }
  T.print(std::cout);

  const ConfigEval &Best = Pruned.Evals[Order.front()];
  std::cout << "\nWinner: " << App.space().describe(Best.Point)
            << " — fully unrolled 4x4 loops (fewest instructions per "
               "offset) at a block size that still keeps several blocks "
               "per SM.\n";
  return 0;
}
