//===- tests/ArchTest.cpp - arch/ unit tests ---------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arch/LaunchConfig.h"
#include "arch/MachineModel.h"
#include "arch/Occupancy.h"

#include <gtest/gtest.h>

using namespace g80;

namespace {

//===--- MachineModel -------------------------------------------------------//

TEST(MachineModel, GeForce8800DerivedQuantities) {
  MachineModel M = MachineModel::geForce8800Gtx();
  // §2.1: 16 SM * 18 FLOP/SM * 1.35GHz = 388.8 GFLOPS.
  EXPECT_NEAR(M.peakGflops(), 388.8, 1e-9);
  // 86.4 GB/s at 1.35 GHz = 64 bytes per SP clock, 4 per SM.
  EXPECT_NEAR(M.globalBytesPerCycle(), 64.0, 1e-9);
  EXPECT_NEAR(M.globalBytesPerCyclePerSM(), 4.0, 1e-9);
  // §2.1: a warp issues in four cycles on the eight SPs.
  EXPECT_EQ(M.issueCyclesPerWarpInstr(), 4u);
  EXPECT_NEAR(M.cyclesToSeconds(1.35e9), 1.0, 1e-12);
}

TEST(MachineModel, Table2Limits) {
  MachineModel M = MachineModel::geForce8800Gtx();
  EXPECT_EQ(M.MaxThreadsPerSM, 768u);
  EXPECT_EQ(M.MaxBlocksPerSM, 8u);
  EXPECT_EQ(M.RegistersPerSM, 8192u);
  EXPECT_EQ(M.SharedMemPerSMBytes, 16384u);
  EXPECT_EQ(M.MaxThreadsPerBlock, 512u);
}

TEST(MachineModel, NextGenDiffers) {
  MachineModel M = MachineModel::hypotheticalNextGen();
  EXPECT_GT(M.RegistersPerSM,
            MachineModel::geForce8800Gtx().RegistersPerSM);
  EXPECT_GT(M.GlobalBandwidthGBps,
            MachineModel::geForce8800Gtx().GlobalBandwidthGBps);
}

//===--- LaunchConfig -------------------------------------------------------//

TEST(LaunchConfig, Counting) {
  LaunchConfig LC(Dim3(4, 3), Dim3(16, 16));
  EXPECT_EQ(LC.numBlocks(), 12u);
  EXPECT_EQ(LC.threadsPerBlock(), 256u);
  EXPECT_EQ(LC.totalThreads(), 3072u);
}

TEST(LaunchConfig, DefaultsToOne) {
  Dim3 D;
  EXPECT_EQ(D.count(), 1u);
  EXPECT_EQ(LaunchConfig().totalThreads(), 1u);
}

//===--- Occupancy: the paper's §2.2 example --------------------------------//

TEST(Occupancy, PaperExampleThreeBlocks) {
  // "256 threads per block, 10 registers per thread, and 4KB of shared
  // memory per thread block ... can schedule 3 thread blocks and 768
  // threads on each SM."
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 256, {10, 4096});
  EXPECT_EQ(O.BlocksPerSM, 3u);
  EXPECT_EQ(O.ThreadsPerSM, 768u);
  EXPECT_EQ(O.WarpsPerBlock, 8u);
  EXPECT_EQ(O.Limit, OccupancyLimit::Threads);
}

TEST(Occupancy, PaperExampleRegisterCliff) {
  // "an optimization that increases each thread's register usage from 10
  // to 11 (an increase of only 10%) will decrease the number of blocks
  // per SM from three to two" (8448 > 8192).
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 256, {11, 4096});
  EXPECT_EQ(O.BlocksPerSM, 2u);
  EXPECT_EQ(O.Limit, OccupancyLimit::Registers);
}

TEST(Occupancy, PaperExampleSharedIncreaseHarmless) {
  // "an optimization that increases each thread block's shared memory
  // usage by 1KB (an increase of 25%) does not decrease the number of
  // blocks per SM."
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 256, {10, 5120});
  EXPECT_EQ(O.BlocksPerSM, 3u);
}

TEST(Occupancy, WorkedExampleMatMul) {
  // §4: 13 registers, 256 threads: B_SM = floor(8192 / (13*256)) = 2.
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 256, {13, 2088});
  EXPECT_EQ(O.BlocksPerSM, 2u);
  EXPECT_EQ(O.Limit, OccupancyLimit::Registers);
}

//===--- Occupancy: limits and invalidity -----------------------------------//

TEST(Occupancy, BlockCapAtEight) {
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 32, {4, 64});
  EXPECT_EQ(O.BlocksPerSM, 8u);
  EXPECT_EQ(O.Limit, OccupancyLimit::Blocks);
}

TEST(Occupancy, SharedMemoryLimits) {
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 64, {8, 6000});
  EXPECT_EQ(O.BlocksPerSM, 2u);
  EXPECT_EQ(O.Limit, OccupancyLimit::SharedMemory);
}

TEST(Occupancy, InvalidWhenBlockTooLarge) {
  MachineModel M = MachineModel::geForce8800Gtx();
  EXPECT_FALSE(computeOccupancy(M, 513, {8, 256}).valid());
  EXPECT_FALSE(computeOccupancy(M, 0, {8, 256}).valid());
}

TEST(Occupancy, InvalidWhenRegistersExplode) {
  // The Fig. 3 far-right case: register usage beyond what is available
  // produces an invalid executable.
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 256, {33, 2088});
  EXPECT_FALSE(O.valid());
  EXPECT_EQ(O.Limit, OccupancyLimit::Invalid);
}

TEST(Occupancy, InvalidWhenSharedExceedsSM) {
  MachineModel M = MachineModel::geForce8800Gtx();
  EXPECT_FALSE(computeOccupancy(M, 64, {8, 17000}).valid());
}

TEST(Occupancy, PartialWarpRoundsUp) {
  MachineModel M = MachineModel::geForce8800Gtx();
  EXPECT_EQ(computeOccupancy(M, 48, {8, 0}).WarpsPerBlock, 2u);
  EXPECT_EQ(computeOccupancy(M, 33, {8, 0}).WarpsPerBlock, 2u);
  EXPECT_EQ(computeOccupancy(M, 32, {8, 0}).WarpsPerBlock, 1u);
}

TEST(Occupancy, ZeroResourceKernelIsBlockLimited) {
  MachineModel M = MachineModel::geForce8800Gtx();
  Occupancy O = computeOccupancy(M, 32, {0, 0});
  EXPECT_EQ(O.BlocksPerSM, 8u);
}

TEST(Occupancy, LimitNamesAreStable) {
  EXPECT_STREQ(occupancyLimitName(OccupancyLimit::Registers),
               "registers/SM");
  EXPECT_STREQ(occupancyLimitName(OccupancyLimit::Invalid), "invalid");
}

//===--- Occupancy: monotonicity properties ---------------------------------//

class OccupancyMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(OccupancyMonotonicity, MoreRegistersNeverMoreBlocks) {
  MachineModel M = MachineModel::geForce8800Gtx();
  unsigned Threads = GetParam();
  unsigned Prev = ~0u;
  for (unsigned Regs = 1; Regs <= 64; ++Regs) {
    Occupancy O = computeOccupancy(M, Threads, {Regs, 1024});
    EXPECT_LE(O.BlocksPerSM, Prev) << "regs=" << Regs;
    Prev = O.BlocksPerSM;
  }
}

TEST_P(OccupancyMonotonicity, MoreSharedNeverMoreBlocks) {
  MachineModel M = MachineModel::geForce8800Gtx();
  unsigned Threads = GetParam();
  unsigned Prev = ~0u;
  for (unsigned Smem = 64; Smem <= 20480; Smem += 512) {
    Occupancy O = computeOccupancy(M, Threads, {10, Smem});
    EXPECT_LE(O.BlocksPerSM, Prev) << "smem=" << Smem;
    Prev = O.BlocksPerSM;
  }
}

TEST_P(OccupancyMonotonicity, ThreadsPerSMWithinLimit) {
  MachineModel M = MachineModel::geForce8800Gtx();
  unsigned Threads = GetParam();
  for (unsigned Regs = 1; Regs <= 40; Regs += 3) {
    Occupancy O = computeOccupancy(M, Threads, {Regs, 2048});
    if (O.valid()) {
      EXPECT_LE(O.ThreadsPerSM, M.MaxThreadsPerSM);
      EXPECT_LE(O.BlocksPerSM, M.MaxBlocksPerSM);
      EXPECT_LE(uint64_t(Regs) * O.ThreadsPerSM, M.RegistersPerSM);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyMonotonicity,
                         ::testing::Values(32u, 64u, 96u, 128u, 192u, 256u,
                                           384u, 512u));

} // namespace
