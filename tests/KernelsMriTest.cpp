//===- tests/KernelsMriTest.cpp - MRI-FHD generator tests --------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "kernels/MriFhd.h"

#include "core/Cluster.h"
#include "core/Evaluation.h"
#include "metrics/Metrics.h"
#include "analysis/Verifier.h"

#include <gtest/gtest.h>

using namespace g80;

namespace {

TEST(MriSpace, RawSizeMatchesTable4) {
  MriFhdApp App(MriProblem::bench());
  EXPECT_EQ(App.space().rawSize(), 175u); // 5 * 5 * 7, as in the paper.
}

TEST(MriSpace, AllExpressibleAtBenchScale) {
  MriFhdApp App(MriProblem::bench());
  for (const ConfigPoint &P : App.space().enumerate())
    EXPECT_TRUE(App.isExpressible(P)) << App.space().describe(P);
}

TEST(MriSpace, WorkSplitsGrid) {
  MriFhdApp App(MriProblem::bench()); // 524288 voxels.
  EXPECT_EQ(App.launch({128, 1, 1}).Grid.X, 4096u);
  EXPECT_EQ(App.launch({128, 1, 8}).Grid.X, 512u);
  EXPECT_EQ(App.invocations({128, 1, 8}), 8u);
  // Total threads over all invocations is invariant.
  EXPECT_EQ(App.launch({128, 1, 8}).totalThreads() * 8,
            App.launch({128, 1, 1}).totalThreads());
}

//===--- The §5.2 clustering property ------------------------------------------//

TEST(MriMetrics, WorkDimensionLeavesMetricsUnchanged) {
  // "changing the tiling factor affects neither the efficiency nor the
  // utilization of this benchmark".
  MriFhdApp App(MriProblem::bench());
  MachineModel M = MachineModel::geForce8800Gtx();
  Evaluator Ev(App, M);
  std::vector<ConfigEval> Evals = Ev.evaluateMetrics();
  for (const ConfigEval &E : Evals) {
    if (!E.usable())
      continue;
    // Find the work=1 sibling.
    ConfigPoint Base = E.Point;
    Base[App.space().dimIndex("work")] = 1;
    for (const ConfigEval &F : Evals) {
      if (F.Point != Base || !F.usable())
        continue;
      EXPECT_DOUBLE_EQ(E.EfficiencyTotal, F.EfficiencyTotal)
          << App.space().describe(E.Point);
      EXPECT_DOUBLE_EQ(E.Metrics.Utilization, F.Metrics.Utilization)
          << App.space().describe(E.Point);
    }
  }
}

TEST(MriMetrics, ConfigsClusterInGroupsOfSeven) {
  // Fig. 6(b): "each point actually represents as many as seven
  // configurations that have indistinguishable efficiency and
  // utilization."
  MriFhdApp App(MriProblem::bench());
  MachineModel M = MachineModel::geForce8800Gtx();
  Evaluator Ev(App, M);
  std::vector<ConfigEval> Evals = Ev.evaluateMetrics();
  std::vector<size_t> Usable;
  for (size_t I = 0; I != Evals.size(); ++I)
    if (Evals[I].usable())
      Usable.push_back(I);
  auto Clusters = clusterByMetrics(Evals, Usable, 1e-9);
  for (const auto &C : Clusters)
    EXPECT_EQ(C.size() % 7, 0u) << "cluster of " << C.size();
}

TEST(MriMetrics, UnrollTradesEfficiencyAgainstNothingElse) {
  // Unrolling removes loop-control instructions: efficiency rises
  // monotonically with the unroll factor at fixed block size.
  MriFhdApp App(MriProblem::bench());
  MachineModel M = MachineModel::geForce8800Gtx();
  double Prev = 0;
  for (int U : {1, 2, 4, 8, 16}) {
    ConfigPoint P = {128, U, 1};
    KernelMetrics KM =
        computeKernelMetrics(App.buildKernel(P), App.launch(P), M);
    ASSERT_TRUE(KM.Valid);
    EXPECT_GT(KM.Efficiency, Prev) << "unroll=" << U;
    Prev = KM.Efficiency;
  }
}

TEST(MriMetrics, SfuNotBlockingBecauseGlobalLoadsExist) {
  MriFhdApp App(MriProblem::bench());
  StaticProfile P = computeStaticProfile(App.buildKernel({128, 4, 1}));
  EXPECT_GT(P.SfuInstrs, 0u);
  EXPECT_GT(P.GlobalLoads, 0u);
  // Blocking units come from the prologue loads only, so regions stay
  // tiny relative to the instruction count.
  EXPECT_LT(P.regions(), 10u);
}

TEST(MriMetrics, BlockSizeChangesUtilizationOnly) {
  MriFhdApp App(MriProblem::bench());
  MachineModel M = MachineModel::geForce8800Gtx();
  ConfigPoint A = {64, 4, 1}, B = {512, 4, 1};
  KernelMetrics KA = computeKernelMetrics(App.buildKernel(A), App.launch(A), M);
  KernelMetrics KB = computeKernelMetrics(App.buildKernel(B), App.launch(B), M);
  ASSERT_TRUE(KA.Valid && KB.Valid);
  EXPECT_DOUBLE_EQ(KA.Efficiency, KB.Efficiency);
  EXPECT_NE(KA.Utilization, KB.Utilization);
}

//===--- Functional verification -------------------------------------------------//

class MriSampledConfigs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MriSampledConfigs, VerifiesAgainstCpuReference) {
  static MriFhdApp App(MriProblem::emulation());
  static std::vector<uint64_t> Valid = [] {
    std::vector<uint64_t> Out;
    MriFhdApp A(MriProblem::emulation());
    for (uint64_t I = 0; I != A.space().rawSize(); ++I)
      if (A.isExpressible(A.space().pointAt(I)))
        Out.push_back(I);
    return Out;
  }();
  uint64_t Index = Valid[(GetParam() * 7) % Valid.size()];
  ConfigPoint P = App.space().pointAt(Index);
  Kernel K = App.buildKernel(P);
  std::vector<std::string> Errors = verifyKernel(K);
  for (const std::string &E : Errors)
    ADD_FAILURE() << K.name() << ": " << E;
  EXPECT_LE(App.verifyConfig(P), 5e-3) << App.space().describe(P);
}

INSTANTIATE_TEST_SUITE_P(SampledSpace, MriSampledConfigs,
                         ::testing::Range(uint64_t(0), uint64_t(24)));

} // namespace
