//===- fleet/Coordinator.cpp ----------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fleet/Coordinator.h"

#include "core/Search.h"
#include "serve/Shard.h"
#include "serve/Spool.h"
#include "support/Journal.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

using namespace g80;

namespace {

Diagnostic fleetDiag(std::string Msg) {
  return makeDiag(ErrorCode::SocketError, Stage::Parse, std::move(Msg));
}

std::string shardName(uint64_t Index) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "shard-%06llu",
                static_cast<unsigned long long>(Index));
  return Buf;
}

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

//===--- Impl -----------------------------------------------------------------//

struct FleetCoordinator::Impl {
  FleetOptions Opts;
  WorkerPool Pool;

  // Planning artifacts (immutable once buildPlan succeeds).
  std::unique_ptr<TunableApp> App;
  std::unique_ptr<SearchEngine> Eng;
  JournalHeader Header;
  ShardPlan Partition;

  /// One shard's scheduling state.  Req is immutable after setup; the
  /// rest is guarded by M.
  struct Shard {
    ShardRequest Req;
    bool Done = false;
    bool Recovered = false;
    bool HedgedOnce = false;
    unsigned InFlight = 0;
    std::chrono::steady_clock::time_point ActiveSince;
    std::vector<std::string> Records;
  };

  std::mutex M;
  std::condition_variable Cv;
  std::vector<Shard> Shards;        ///< Guarded by M (except .Req).
  std::deque<uint64_t> Queue;       ///< Guarded by M; may hold hedge dups.
  std::vector<double> Durations;    ///< Guarded by M; completed-shard secs.
  uint64_t DoneCount = 0;           ///< Guarded by M.
  uint64_t ReDispatched = 0;        ///< Guarded by M.
  uint64_t HedgedCount = 0;         ///< Guarded by M.
  uint64_t DuplicatesDropped = 0;   ///< Guarded by M.
  uint64_t LocalShards = 0;         ///< Guarded by M.
  bool Degraded = false;            ///< Guarded by M.
  bool Fatal = false;               ///< Guarded by M.
  Diagnostic FatalDiag;             ///< Guarded by M.
  std::vector<std::string> Warnings; ///< Guarded by M.

  explicit Impl(FleetOptions O) : Opts(std::move(O)), Pool(Opts.Workers) {}

  //===--- Predicates and small utilities ----------------------------------//

  bool stopRequested() const {
    return Opts.ShouldStop && Opts.ShouldStop();
  }

  bool finishedLocked() const { return DoneCount == Shards.size(); }

  bool finished() {
    std::lock_guard<std::mutex> L(M);
    return finishedLocked() || Fatal;
  }

  bool shouldExit() { return finished() || stopRequested(); }

  void sleepInterruptible(double Seconds) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(Seconds);
    while (std::chrono::steady_clock::now() < Deadline && !shouldExit())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  void warn(std::string Msg) {
    std::lock_guard<std::mutex> L(M);
    Warnings.push_back(std::move(Msg));
  }

  void fail(Diagnostic D) {
    std::lock_guard<std::mutex> L(M);
    if (!Fatal) {
      Fatal = true;
      FatalDiag = std::move(D);
    }
    Cv.notify_all();
  }

  //===--- Spool layout -----------------------------------------------------//

  std::string manifestPath() const { return Opts.SpoolDir + "/fleet.plan"; }
  std::string ticketPath(uint64_t I) const {
    return Opts.SpoolDir + "/" + shardName(I) + ".job";
  }
  std::string resultPath(uint64_t I) const {
    return Opts.SpoolDir + "/" + shardName(I) + ".result";
  }
  std::string localJournalPath(uint64_t I) const {
    return Opts.SpoolDir + "/" + shardName(I) + ".local.journal";
  }

  std::string manifestJson() const {
    std::ostringstream OS;
    OS << "{\"type\":\"fleet_plan\",\"plan_fp\":" << Partition.PlanFp
       << ",\"shards\":" << Partition.Shards.size()
       << ",\"candidates\":" << Partition.Candidates
       << ",\"shard_size\":" << Partition.ShardSize << "}";
    return OS.str();
  }

  //===--- Setup ------------------------------------------------------------//

  /// Derives the plan, fingerprint, and shard partition.
  Expected<Unit> buildPlan() {
    TraceSpan Span("fleet.plan");
    std::string Error;
    if (!validateServeRequest(Opts.Request, Error))
      return fleetDiag(Error);
    if (!serveStrategyIsPlannable(Opts.Request))
      return fleetDiag("strategy '" + Opts.Request.Strategy +
                       "' is adaptive and cannot be sharded; run it on a "
                       "single daemon with 'tune serve' or locally with "
                       "'tune search'");
    Opts.Request.Wait = false;
    Opts.Request.DeadlineSeconds = 0;
    SpaceTier Tier = SpaceTier::Small;
    (void)parseSpaceTier(Opts.Request.Space, Tier); // Validated above.
    App = makeServeApp(Opts.Request.App, Tier);
    if (!App)
      return fleetDiag("unknown app '" + Opts.Request.App + "'");
    SimOptions SimO;
    SimO.BandwidthFastPath = Opts.Request.FastBw;
    Eng = std::make_unique<SearchEngine>(
        *App, makeServeMachine(Opts.Request.Machine), MetricOptions{}, SimO,
        FaultPlan{}, LintOptions{Opts.Request.Lint});
    SweepPlan Plan = planForRequest(*Eng, Opts.Request, Opts.Jobs);
    Header = fingerprintForRequest(*App, *Eng, Plan, Opts.Request);
    Partition = ShardPlan::partition(Plan.Candidates.size(),
                                     planFingerprint(Header, Plan),
                                     Opts.ShardSize);
    Shards.clear();
    Shards.reserve(Partition.Shards.size());
    for (const ShardRange &R : Partition.Shards) {
      Shard S;
      S.Req.Tune = Opts.Request;
      S.Req.PlanFp = Partition.PlanFp;
      S.Req.ShardIndex = R.Index;
      S.Req.Begin = R.Begin;
      S.Req.End = R.End;
      Shards.push_back(std::move(S));
    }
    return Unit{};
  }

  /// Opens the coordinator spool: validates (or writes) the plan
  /// manifest, quarantines torn tickets/results, writes missing shard
  /// tickets, and loads every durable shard result.
  Expected<Unit> openSpool() {
    TraceSpan Span("fleet.spool");
    std::error_code Ec;
    std::filesystem::create_directories(Opts.SpoolDir, Ec);
    if (Ec)
      return fleetDiag("cannot create fleet spool '" + Opts.SpoolDir +
                       "': " + Ec.message());

    // The manifest pins the spool to one exact partition: a restart with
    // a different plan (or shard size) must not splice foreign results.
    std::string Manifest = manifestJson();
    if (std::filesystem::exists(manifestPath())) {
      std::string Have = slurpFile(manifestPath());
      while (!Have.empty() && (Have.back() == '\n' || Have.back() == '\r'))
        Have.pop_back();
      if (Have != Manifest)
        return fleetDiag(
            "fleet spool '" + Opts.SpoolDir +
            "' belongs to a different plan (manifest mismatch); use a "
            "fresh --spool or rerun the original request");
    } else {
      Expected<Unit> W = writeFileDurable(manifestPath(), Manifest + "\n");
      if (!W)
        return W.takeDiag();
    }

    // Quarantine pass (same invariant as serve/Spool): a ticket torn by
    // a mid-write crash is renamed .bad and reported, never fatal.
    for (const auto &Entry :
         std::filesystem::directory_iterator(Opts.SpoolDir, Ec)) {
      if (!Entry.is_regular_file() || Entry.path().extension() != ".job")
        continue;
      std::string Raw = slurpFile(Entry.path().string());
      if (!ShardRequest::fromJson(Raw)) {
        std::string Bad = Entry.path().string() + ".bad";
        std::error_code RenEc;
        std::filesystem::rename(Entry.path(), Bad, RenEc);
        warn("quarantined corrupt fleet ticket '" + Entry.path().string() +
             "'" + (RenEc ? " (rename failed: " + RenEc.message() + ")"
                          : ""));
      }
    }

    for (uint64_t I = 0; I != Shards.size(); ++I) {
      Shard &S = Shards[I];
      if (!std::filesystem::exists(ticketPath(I))) {
        Expected<Unit> W =
            writeFileDurable(ticketPath(I), S.Req.toJson() + "\n");
        if (!W)
          return W.takeDiag();
      }
      if (!std::filesystem::exists(resultPath(I)))
        continue;
      Expected<ShardResult> R = ShardResult::fromJson(slurpFile(resultPath(I)));
      bool Valid = bool(R) && R->completed() &&
                   R->PlanFp == Partition.PlanFp && R->ShardIndex == I &&
                   R->Records.size() == Partition.Shards[I].size();
      if (!Valid) {
        std::string Bad = resultPath(I) + ".bad";
        std::error_code RenEc;
        std::filesystem::rename(resultPath(I), Bad, RenEc);
        warn("quarantined corrupt fleet shard result '" + resultPath(I) +
             "'" + (RenEc ? " (rename failed: " + RenEc.message() + ")"
                          : ""));
        continue;
      }
      S.Done = true;
      S.Recovered = true;
      S.Records = std::move(R->Records);
      ++DoneCount;
    }
    return Unit{};
  }

  //===--- Shard scheduling --------------------------------------------------//

  /// Pops the next unfinished shard, waiting briefly when the queue is
  /// empty.  Marks it in flight.
  std::optional<uint64_t> claimShard() {
    std::unique_lock<std::mutex> L(M);
    Cv.wait_for(L, std::chrono::milliseconds(200), [this] {
      return !Queue.empty() || finishedLocked() || Fatal;
    });
    while (!Queue.empty()) {
      uint64_t I = Queue.front();
      Queue.pop_front();
      Shard &S = Shards[size_t(I)];
      if (S.Done)
        continue; // A hedge duplicate whose first copy already won.
      if (S.InFlight++ == 0)
        S.ActiveSince = std::chrono::steady_clock::now();
      return I;
    }
    return std::nullopt;
  }

  /// Drops the caller's in-flight claim on shard \p I; when \p Requeue
  /// (dispatch failed) the shard goes back to the queue front.
  void releaseShard(uint64_t I, bool Requeue) {
    std::lock_guard<std::mutex> L(M);
    Shard &S = Shards[size_t(I)];
    if (S.InFlight)
      --S.InFlight;
    if (Requeue && !S.Done) {
      Queue.push_front(I);
      ++ReDispatched;
      traceCount("fleet.redispatch");
      Cv.notify_all();
    }
  }

  /// First-result-wins durable commit.  Returns false only on a fatal
  /// spool failure.
  bool commitShard(uint64_t I, std::vector<std::string> Records,
                   double DurationSeconds, bool Local) {
    std::unique_lock<std::mutex> L(M);
    Shard &S = Shards[size_t(I)];
    if (S.Done) {
      ++DuplicatesDropped;
      traceCount("fleet.duplicate_dropped");
      return true;
    }
    ShardResult R;
    R.ShardIndex = I;
    R.PlanFp = Partition.PlanFp;
    R.Begin = S.Req.Begin;
    R.End = S.Req.End;
    R.Status = "completed";
    R.Records = Records;
    Expected<Unit> W = writeFileDurable(resultPath(I), R.toJson() + "\n");
    if (!W) {
      L.unlock();
      fail(W.takeDiag());
      return false;
    }
    S.Done = true;
    S.Records = std::move(Records);
    ++DoneCount;
    Durations.push_back(DurationSeconds);
    if (Local) {
      ++LocalShards;
      Degraded = Pool.size() > 0;
      traceCount("fleet.local_shard");
    }
    traceCount("fleet.shard_done");
    Cv.notify_all();
    return true;
  }

  FleetProgress progressLocked() const {
    FleetProgress P;
    P.ShardsDone = DoneCount;
    P.ShardsTotal = Shards.size();
    P.HealthyWorkers = Pool.healthyCount();
    P.TotalWorkers = Pool.size();
    P.ReDispatched = ReDispatched;
    P.Hedged = HedgedCount;
    P.LocalShards = LocalShards;
    P.Degraded = Degraded;
    return P;
  }

  //===--- Threads -----------------------------------------------------------//

  /// One runner per worker: connect (with backoff), claim, dispatch,
  /// commit; any failure marks the worker unhealthy, requeues the shard,
  /// and reconnects.
  void workerLoop(size_t W) {
    unsigned FailStreak = 0;
    std::optional<ServeClient> Conn;
    auto LastProbe = std::chrono::steady_clock::now();
    double ProbeTimeout = std::max(1.0, Opts.HeartbeatSeconds);

    auto Disconnect = [&](const std::string &Why, uint64_t Salt) {
      Conn.reset();
      Pool.setHealthy(W, false);
      Pool.noteFailure(W);
      ++FailStreak;
      traceCount("fleet.worker_failure");
      warn("worker " + Pool.endpoint(W).Label + ": " + Why);
      sleepInterruptible(Opts.ReconnectBackoff.delaySeconds(
          std::min(FailStreak, 12u), Salt ^ (uint64_t(W) << 32)));
    };

    while (!shouldExit()) {
      if (!Conn) {
        Expected<ServeClient> C = Pool.connectWorker(W);
        if (!C) {
          Pool.setHealthy(W, false);
          Pool.noteFailure(W);
          ++FailStreak;
          sleepInterruptible(Opts.ReconnectBackoff.delaySeconds(
              std::min(FailStreak, 12u), uint64_t(W)));
          continue;
        }
        Expected<ServeStatus> St = C->status(ProbeTimeout);
        if (!St || St->Draining) {
          Disconnect(!St ? St.diag().Message : "worker is draining",
                     FailStreak);
          continue;
        }
        Conn.emplace(std::move(*C));
        Pool.setHealthy(W, true);
        FailStreak = 0;
        LastProbe = std::chrono::steady_clock::now();
      }

      std::optional<uint64_t> I = claimShard();
      if (!I) {
        // Idle: heartbeat the daemon so silent death is noticed within a
        // heartbeat period, not at the next dispatch.
        if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          LastProbe)
                .count() >= Opts.HeartbeatSeconds) {
          Pool.noteDispatched(W); // probe counts as a dispatch slot
          Expected<ServeStatus> St = Conn->status(ProbeTimeout);
          LastProbe = std::chrono::steady_clock::now();
          if (!St || St->Draining) {
            Disconnect(!St ? St.diag().Message : "worker is draining", 1);
            continue;
          }
        }
        continue;
      }

      Pool.noteDispatched(W);
      auto T0 = std::chrono::steady_clock::now();
      Expected<ShardResult> R = Conn->runShard(
          Shards[size_t(*I)].Req, Opts.ShardTimeoutSeconds, [this, W] {
            return finished() || stopRequested() || !Pool.healthy(W);
          });
      LastProbe = std::chrono::steady_clock::now();
      double Dur =
          std::chrono::duration<double>(LastProbe - T0).count();

      if (!R) {
        releaseShard(*I, /*Requeue=*/!stopRequested());
        Disconnect("shard " + std::to_string(*I) +
                       " dispatch failed: " + R.diag().Message,
                   *I);
        continue;
      }
      if (!R->completed() || R->ShardIndex != *I ||
          R->PlanFp != Partition.PlanFp ||
          R->Records.size() != Shards[size_t(*I)].Req.End -
                                   Shards[size_t(*I)].Req.Begin) {
        releaseShard(*I, /*Requeue=*/!stopRequested());
        Disconnect("shard " + std::to_string(*I) + " refused: " +
                       (R->Error.empty() ? "malformed shard_result"
                                         : R->Error),
                   *I);
        continue;
      }
      if (!commitShard(*I, std::move(R->Records), Dur, /*Local=*/false)) {
        releaseShard(*I, /*Requeue=*/false);
        return; // Fatal spool failure; run() reports it.
      }
      releaseShard(*I, /*Requeue=*/false);
      Pool.noteCompleted(W);
    }
  }

  /// Degraded-mode executor: runs shards in-process, but only while no
  /// remote worker is healthy (or none were configured).
  void localLoop() {
    while (!shouldExit()) {
      if (Pool.size() > 0 && Pool.healthyCount() > 0) {
        sleepInterruptible(0.1);
        continue;
      }
      std::optional<uint64_t> I = claimShard();
      if (!I)
        continue;
      auto T0 = std::chrono::steady_clock::now();
      ShardResult R = executeShard(*Eng, *App, Shards[size_t(*I)].Req,
                                   localJournalPath(*I), Opts.Jobs,
                                   [this] { return stopRequested(); });
      double Dur = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
      if (!R.completed()) {
        warn("local shard " + std::to_string(*I) + ": " + R.Error);
        releaseShard(*I, /*Requeue=*/!stopRequested());
        continue;
      }
      if (!commitShard(*I, std::move(R.Records), Dur, /*Local=*/true)) {
        releaseShard(*I, /*Requeue=*/false);
        return;
      }
      releaseShard(*I, /*Requeue=*/false);
    }
  }

  /// Hedging + heartbeat + progress: probes every worker each heartbeat
  /// period on a fresh connection, duplicates stragglers past the
  /// configured percentile, and streams progress.
  void monitorLoop() {
    FleetProgress Last;
    bool Emitted = false;
    auto LastProbe = std::chrono::steady_clock::now();
    while (!shouldExit()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

      auto Now = std::chrono::steady_clock::now();
      if (Pool.size() > 0 &&
          std::chrono::duration<double>(Now - LastProbe).count() >=
              Opts.HeartbeatSeconds) {
        LastProbe = Now;
        for (size_t W = 0; W != Pool.size(); ++W)
          Pool.probe(W, std::max(1.0, Opts.HeartbeatSeconds));
      }

      {
        std::lock_guard<std::mutex> L(M);
        // Hedge: with >= 3 completed durations, any in-flight shard past
        // the percentile (with a floor) gets queued a second time.
        if (Durations.size() >= 3 && Pool.size() + (Opts.AllowLocal ? 1 : 0) > 1) {
          std::vector<double> Sorted(Durations);
          std::sort(Sorted.begin(), Sorted.end());
          size_t Idx = size_t(Opts.HedgePercentile *
                                  double(Sorted.size() - 1) +
                              0.5);
          double Threshold = std::max(Opts.HedgeMinSeconds,
                                      Sorted[std::min(Idx, Sorted.size() - 1)]);
          for (uint64_t I = 0; I != Shards.size(); ++I) {
            Shard &S = Shards[size_t(I)];
            if (S.Done || !S.InFlight || S.HedgedOnce)
              continue;
            if (std::chrono::duration<double>(Now - S.ActiveSince).count() <=
                Threshold)
              continue;
            S.HedgedOnce = true;
            ++HedgedCount;
            traceCount("fleet.hedged");
            Queue.push_back(I);
            Cv.notify_all();
          }
        }
        FleetProgress P = progressLocked();
        if (Opts.OnProgress &&
            (!Emitted || P.ShardsDone != Last.ShardsDone ||
             P.HealthyWorkers != Last.HealthyWorkers ||
             P.ReDispatched != Last.ReDispatched ||
             P.Hedged != Last.Hedged || P.Degraded != Last.Degraded ||
             P.LocalShards != Last.LocalShards)) {
          Last = P;
          Emitted = true;
          Opts.OnProgress(P);
        }
      }
    }
  }

  //===--- Merge -------------------------------------------------------------//

  /// Splices every shard's records, in shard order, into the merged
  /// journal — written to a temp name and renamed, so the journal path
  /// only ever holds a complete merge.
  Expected<Unit> merge() {
    TraceSpan Span("fleet.merge");
    std::string Tmp = Opts.JournalPath + ".merge.tmp";
    Expected<JournalWriter> W = JournalWriter::create(Tmp, Header);
    if (!W)
      return W.takeDiag();
    for (const Shard &S : Shards)
      for (const std::string &Rec : S.Records) {
        Expected<Unit> A = W->appendRecord(Rec);
        if (!A)
          return A.takeDiag();
      }
    W->close();
    std::error_code Ec;
    std::filesystem::rename(Tmp, Opts.JournalPath, Ec);
    if (Ec)
      return fleetDiag("cannot move merged journal into place: " +
                       Ec.message());
    fsyncParentDir(Opts.JournalPath);
    return Unit{};
  }
};

//===--- FleetCoordinator ------------------------------------------------------//

FleetCoordinator::FleetCoordinator(FleetOptions Opts)
    : M(new Impl(std::move(Opts))) {}

FleetCoordinator::~FleetCoordinator() { delete M; }

FleetReport FleetCoordinator::run() {
  TraceSpan Span("fleet.run");
  FleetReport Rep;

  if (M->Opts.SpoolDir.empty()) {
    Rep.Error = fleetDiag("fleet mode requires a spool directory");
    return Rep;
  }
  if (M->Opts.JournalPath.empty()) {
    Rep.Error = fleetDiag("fleet mode requires a journal path");
    return Rep;
  }
  if (M->Pool.size() == 0 && !M->Opts.AllowLocal) {
    Rep.Error =
        fleetDiag("no workers configured and local execution disabled");
    return Rep;
  }

  Expected<Unit> P = M->buildPlan();
  if (!P) {
    Rep.Error = P.takeDiag();
    return Rep;
  }
  Rep.PlanFp = M->Partition.PlanFp;
  Rep.ShardsTotal = M->Partition.Shards.size();

  Expected<Unit> Sp = M->openSpool();
  if (!Sp) {
    Rep.Error = Sp.takeDiag();
    Rep.Warnings = std::move(M->Warnings);
    return Rep;
  }
  Rep.ShardsRecovered = M->DoneCount;
  for (uint64_t I = 0; I != M->Shards.size(); ++I)
    if (!M->Shards[I].Done)
      M->Queue.push_back(I);

  if (!M->Queue.empty() && !M->stopRequested()) {
    std::vector<std::thread> Threads;
    for (size_t W = 0; W != M->Pool.size(); ++W)
      Threads.emplace_back(&Impl::workerLoop, M, W);
    if (M->Opts.AllowLocal)
      Threads.emplace_back(&Impl::localLoop, M);
    Threads.emplace_back(&Impl::monitorLoop, M);

    {
      std::unique_lock<std::mutex> L(M->M);
      while (!M->finishedLocked() && !M->Fatal) {
        if (M->stopRequested())
          break;
        M->Cv.wait_for(L, std::chrono::milliseconds(100));
      }
    }
    for (std::thread &T : Threads)
      T.join();
  }

  Rep.ShardsCompleted = M->DoneCount;
  Rep.ReDispatched = M->ReDispatched;
  Rep.Hedged = M->HedgedCount;
  Rep.DuplicatesDropped = M->DuplicatesDropped;
  Rep.LocalShards = M->LocalShards;
  Rep.Degraded = M->Degraded;
  Rep.Warnings = std::move(M->Warnings);

  if (M->Fatal) {
    Rep.Status = FleetStatus::Error;
    Rep.Error = M->FatalDiag;
    return Rep;
  }
  if (M->DoneCount != M->Shards.size()) {
    Rep.Status = FleetStatus::Interrupted;
    return Rep;
  }
  Expected<Unit> Merged = M->merge();
  if (!Merged) {
    Rep.Status = FleetStatus::Error;
    Rep.Error = Merged.takeDiag();
    return Rep;
  }
  Rep.Status = FleetStatus::Completed;
  return Rep;
}
