//===- ptx/Parser.h - Textual kernel parser -----------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the PTX-flavored syntax that ptx/Printer.h emits back into a
/// Kernel.  Printing and re-parsing is a bit-exact round trip (float
/// immediates use PTX's 0fXXXXXXXX form), so kernels can be dumped,
/// hand-edited or written from scratch as text, then verified, profiled,
/// emulated and timed like generated ones.  tools/tune uses this to
/// accept kernels from files.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_PTX_PARSER_H
#define G80TUNE_PTX_PARSER_H

#include "ptx/Kernel.h"
#include "support/Status.h"

#include <string_view>

namespace g80 {

/// Parses one kernel from \p Text.
///
/// Accepted syntax is exactly the printer's output:
/// \code
///   .entry name (.param .global .f32* A, .param .s32 n)
///     .shared tile[2048]
///     .local 8 bytes/thread
///   {
///     mov %r0, %tid.x;
///     loop x256 {
///       ld.global.f32 %r1, [A + %r0 + 16];
///       @divergent %r2 if {
///         st.global.f32 [A + %r0], %r1;
///       }
///     }
///   }
/// \endcode
/// Comments (`// ...` and `/* ... */`) are ignored, except that the
/// printer's `// NB/thread DRAM` annotation on global/local accesses is
/// honored as the access's effective coalescing traffic.  Float
/// immediates accept both `0fXXXXXXXX` and decimal forms.
///
/// Failures return a Diagnostic with Code ParseError, Stage Parse and the
/// 1-based source line of the first error.
Expected<Kernel> parseKernel(std::string_view Text);

} // namespace g80

#endif // G80TUNE_PTX_PARSER_H
