//===- bench/serve_load.cpp - tune serve throughput/latency benchmark --------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Drives the tune serve daemon with ramped concurrent client load and
// reports requests/second, p50/p99 latency, the saturation point, and
// the overload shed rate.  By default it hosts a TuneServer in-process
// (ephemeral loopback TCP, spool under a temp dir); with --socket PATH
// it drives an externally started daemon instead — that is the CI smoke
// mode.
//
// Emits machine-readable JSON (default BENCH_serve.json) for the CI
// perf artifact.
//
// Flags:
//   --out PATH      JSON output path (default BENCH_serve.json)
//   --socket PATH   drive an external daemon on this Unix socket instead
//                   of hosting one in-process
//   --seconds S     duration of each load stage (default 2)
//   --tiny          CI smoke: 0.5-second stages
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace g80;

namespace {

struct StageResult {
  unsigned Clients = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;
  uint64_t Errors = 0;
  double Seconds = 0;
  double Rps = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double ShedRate = 0;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// One load stage: \p Clients concurrent connections, each looping
/// wait-mode random-strategy requests until the stage deadline.
StageResult runStage(const std::string &SocketPath, uint16_t Port,
                     unsigned Clients, double Seconds) {
  StageResult R;
  R.Clients = Clients;
  std::mutex M;
  std::vector<double> Latencies;
  std::atomic<uint64_t> Completed{0}, Shed{0}, Errors{0};
  auto T0 = std::chrono::steady_clock::now();
  auto Deadline = T0 + std::chrono::duration<double>(Seconds);

  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      Expected<ServeClient> Client = ServeClient::connect(SocketPath, Port);
      if (!Client) {
        Errors.fetch_add(1);
        return;
      }
      uint64_t Seq = 0;
      while (std::chrono::steady_clock::now() < Deadline) {
        TuneRequest Req;
        Req.App = "matmul";
        Req.Strategy = "random";
        Req.Budget = 2;
        Req.Seed = 1 + (uint64_t(C) << 16) + Seq++;
        Req.Wait = true;
        auto S0 = std::chrono::steady_clock::now();
        Expected<std::string> Reply = Client->submit(Req, 30);
        if (!Reply) {
          Errors.fetch_add(1);
          break;
        }
        std::string Type = frameType(*Reply);
        if (Type == "overloaded") {
          Shed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        if (Type != "accepted") {
          Errors.fetch_add(1);
          continue;
        }
        Expected<std::string> Result = Client->awaitResult(60);
        if (!Result || frameType(*Result) != "result") {
          Errors.fetch_add(1);
          break;
        }
        double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - S0)
                        .count();
        Completed.fetch_add(1);
        std::lock_guard<std::mutex> L(M);
        Latencies.push_back(Ms);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  R.Completed = Completed.load();
  R.Shed = Shed.load();
  R.Errors = Errors.load();
  R.Rps = R.Seconds > 0 ? double(R.Completed) / R.Seconds : 0;
  uint64_t Attempts = R.Completed + R.Shed;
  R.ShedRate = Attempts ? double(R.Shed) / double(Attempts) : 0;
  std::sort(Latencies.begin(), Latencies.end());
  R.P50Ms = percentile(Latencies, 0.50);
  R.P99Ms = percentile(Latencies, 0.99);
  return R;
}

/// Burst-submits \p Count no-wait requests on one connection to measure
/// the backpressure response: the queue bound admits some and sheds the
/// rest with an "overloaded" frame.
void overloadProbe(const std::string &SocketPath, uint16_t Port,
                   unsigned Count, uint64_t &Accepted, uint64_t &Shed) {
  Accepted = Shed = 0;
  Expected<ServeClient> Client = ServeClient::connect(SocketPath, Port);
  if (!Client)
    return;
  for (unsigned I = 0; I != Count; ++I) {
    TuneRequest Req;
    Req.App = "matmul";
    Req.Strategy = "random";
    Req.Budget = 1;
    Req.Seed = 7000 + I;
    Expected<std::string> Reply = Client->submit(Req, 30);
    if (!Reply)
      return;
    std::string Type = frameType(*Reply);
    if (Type == "accepted")
      ++Accepted;
    else if (Type == "overloaded")
      ++Shed;
  }
}

std::string fmtDouble(double V) {
  std::ostringstream OS;
  OS << V;
  return OS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_serve.json";
  std::string ExternalSocket;
  double StageSeconds = 2.0;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--socket") && I + 1 < Argc)
      ExternalSocket = Argv[++I];
    else if (!std::strcmp(Argv[I], "--seconds") && I + 1 < Argc)
      StageSeconds = std::atof(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--tiny"))
      StageSeconds = 0.5;
  }

  std::ofstream Out(OutPath);
  if (!Out) {
    std::cerr << "error: cannot write " << OutPath << "\n";
    return 1;
  }
  if (!socketsSupported()) {
    Out << "{\"bench\":\"serve_load\",\"sockets_supported\":false}\n";
    std::cout << "serve_load: sockets unsupported on this platform; "
                 "emitted stub\n";
    return 0;
  }

  // Host the daemon in-process unless pointed at an external one.  A
  // small queue bound makes the overload probe actually shed.
  uint64_t QueueLimit = 4;
  std::unique_ptr<TuneServer> Server;
  std::thread ServeThread;
  uint16_t Port = 0;
  std::string SpoolDir;
  if (ExternalSocket.empty()) {
    SpoolDir = (std::filesystem::temp_directory_path() /
                "g80_serve_load_spool")
                   .string();
    std::filesystem::remove_all(SpoolDir);
    ServeOptions SO;
    SO.TcpPort = 0;
    SO.SpoolDir = SpoolDir;
    SO.QueueLimit = QueueLimit;
    SO.Executors = 2;
    SO.Jobs = 2;
    Server = std::make_unique<TuneServer>(SO);
    Expected<Unit> Started = Server->start();
    if (!Started) {
      std::cerr << "error: " << Started.diag().Message << "\n";
      return 1;
    }
    Port = Server->port();
    ServeThread = std::thread([&] { Server->serve(); });
  } else {
    // Report the external daemon's actual bound, not our default.
    Expected<ServeClient> Probe = ServeClient::connect(ExternalSocket, 0);
    if (!Probe) {
      std::cerr << "error: cannot connect to " << ExternalSocket << ": "
                << Probe.diag().Message << "\n";
      return 1;
    }
    Expected<ServeStatus> S = Probe->status(10);
    if (S)
      QueueLimit = S->QueueLimit;
  }

  const unsigned Ramp[] = {1, 2, 4, 8};
  std::vector<StageResult> Stages;
  for (unsigned Clients : Ramp) {
    StageResult R = runStage(ExternalSocket, Port, Clients, StageSeconds);
    std::cout << "clients=" << R.Clients << " rps=" << R.Rps
              << " p50=" << R.P50Ms << "ms p99=" << R.P99Ms
              << "ms shed_rate=" << R.ShedRate << " errors=" << R.Errors
              << "\n";
    Stages.push_back(R);
  }

  // Saturation: the first ramp stage where requests were shed or where
  // doubling the clients bought < 10% more throughput.
  unsigned Saturation = 0;
  for (size_t I = 0; I < Stages.size(); ++I) {
    if (Stages[I].Shed > 0 ||
        (I > 0 && Stages[I].Rps < Stages[I - 1].Rps * 1.10)) {
      Saturation = Stages[I].Clients;
      break;
    }
  }

  uint64_t ProbeAccepted = 0, ProbeShed = 0;
  overloadProbe(ExternalSocket, Port, unsigned(QueueLimit) + 12,
                ProbeAccepted, ProbeShed);
  std::cout << "overload probe: accepted=" << ProbeAccepted
            << " shed=" << ProbeShed << "\n";

  if (Server) {
    Expected<ServeClient> Client = ServeClient::connect("", Port);
    if (Client)
      (void)Client->shutdown(30);
    ServeThread.join();
    std::error_code Ec;
    std::filesystem::remove_all(SpoolDir, Ec);
  }

  Out << "{\n  \"bench\": \"serve_load\",\n"
      << "  \"sockets_supported\": true,\n"
      << "  \"external_daemon\": "
      << (ExternalSocket.empty() ? "false" : "true") << ",\n"
      << "  \"queue_limit\": " << QueueLimit << ",\n"
      << "  \"stage_seconds\": " << fmtDouble(StageSeconds) << ",\n"
      << "  \"stages\": [\n";
  for (size_t I = 0; I < Stages.size(); ++I) {
    const StageResult &R = Stages[I];
    Out << "    {\"clients\": " << R.Clients
        << ", \"completed\": " << R.Completed << ", \"shed\": " << R.Shed
        << ", \"errors\": " << R.Errors
        << ", \"rps\": " << fmtDouble(R.Rps)
        << ", \"p50_ms\": " << fmtDouble(R.P50Ms)
        << ", \"p99_ms\": " << fmtDouble(R.P99Ms)
        << ", \"shed_rate\": " << fmtDouble(R.ShedRate) << "}"
        << (I + 1 < Stages.size() ? "," : "") << "\n";
  }
  Out << "  ],\n"
      << "  \"saturation_clients\": " << Saturation << ",\n"
      << "  \"overload_probe\": {\"submitted\": " << (QueueLimit + 12)
      << ", \"accepted\": " << ProbeAccepted
      << ", \"shed\": " << ProbeShed << ", \"shed_rate\": "
      << fmtDouble(double(ProbeShed) / double(QueueLimit + 12)) << "}\n"
      << "}\n";
  std::cout << "wrote " << OutPath << "\n";

  bool AnyErrors = false;
  for (const StageResult &R : Stages)
    AnyErrors |= R.Errors != 0;
  return AnyErrors ? 1 : 0;
}
