//===- core/Report.h - Sweep summaries from journals, CSVs, traces --------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the observability layer: load the EvalRecords a
/// sweep left behind (write-ahead journal or --out CSV), aggregate them
/// into a SweepSummary — the Table-4 view (measured vs. valid vs. space),
/// stall/bandwidth attribution from the simulator counters, quarantine
/// breakdown per stage and code, top-N slowest configurations — and
/// optionally fold in a --trace JSONL file for the per-stage wall-time
/// histogram.  `tune report` renders the result as text or JSON; tests
/// call the same entry points directly.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_CORE_REPORT_H
#define G80TUNE_CORE_REPORT_H

#include "core/EvalRecord.h"
#include "support/Journal.h"

#include <array>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace g80 {

/// Records loaded from a sweep artifact.  Header is present for journals
/// (whose fingerprint names the app/machine/strategy and the raw space
/// size) and absent for CSV dumps.
struct LoadedRecords {
  std::optional<JournalHeader> Header;
  std::vector<EvalRecord> Records;
};

/// Loads \p Path as either a sweep journal (sniffed by its header line)
/// or an EvalRecord CSV dump.
Expected<LoadedRecords> loadEvalRecords(const std::string &Path);

/// Aggregate of one span name across a trace file.
struct TraceStageStat {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalUs = 0;
  uint64_t MinUs = ~uint64_t(0);
  uint64_t MaxUs = 0;

  double meanUs() const { return Count == 0 ? 0 : double(TotalUs) / double(Count); }
};

/// Aggregated --trace JSONL: per-stage wall-time stats plus the counter
/// lines, in file order for stages of equal total time.
struct TraceSummary {
  std::vector<TraceStageStat> Stages; ///< Sorted by TotalUs, descending.
  std::map<std::string, uint64_t> Counters;
  uint64_t SpanLines = 0;
};

/// Parses a Tracer JSONL file.  Unknown line types are ignored (forward
/// compatibility); a line that is not a JSON object is an error.
Expected<TraceSummary> readTraceSummary(const std::string &Path);

struct ReportOptions {
  size_t TopN = 5; ///< Slowest-configuration list length.
};

/// Everything `tune report` prints, precomputed.
struct SweepSummary {
  /// Journal fingerprint when the source was a journal.
  std::optional<JournalHeader> Source;

  size_t Records = 0;
  size_t Expressible = 0;
  size_t Valid = 0; ///< Launchable (the paper's valid executables).
  size_t Measured = 0;
  size_t Quarantined = 0;
  size_t FastBw = 0; ///< Measured via the §5.3 analytic bound.

  double TotalMeasuredSeconds = 0;
  bool HasBest = false;
  EvalRecord Best; ///< Valid only when HasBest.

  /// Attribution sums over cycle-simulated records (fast-path records
  /// carry no scheduler statistics).
  uint64_t Cycles = 0;
  uint64_t IssueStallCycles = 0;
  uint64_t MemQueueWaitCycles = 0;
  double MeanBlocksPerSm = 0; ///< Over measured records with occupancy.

  std::array<size_t, NumStages> QuarantinedPerStage{};
  std::map<std::string, size_t> QuarantineCodes;

  std::vector<EvalRecord> Slowest; ///< Top-N by TimeSeconds, descending.

  /// Aggregate issue efficiency: busy share of the simulated cycles.
  double issueEfficiency() const {
    return Cycles == 0 ? 0 : 1.0 - double(IssueStallCycles) / double(Cycles);
  }

  /// Table 4's space reduction over what this artifact can see: the
  /// fraction of valid configurations not measured.
  double spaceReduction() const {
    if (Valid == 0)
      return 0;
    double R = 1.0 - double(Measured) / double(Valid);
    return R < 0 ? 0 : R;
  }

  /// Space reduction against the raw configuration space — the journal
  /// header's Table-4 denominator.  Only meaningful when Source is set
  /// (a journal holds candidates only, so spaceReduction() is near zero
  /// there); zero without a header.
  double rawSpaceReduction() const {
    if (!Source || Source->RawSize == 0)
      return 0;
    double R = 1.0 - double(Measured) / double(Source->RawSize);
    return R < 0 ? 0 : R;
  }

  static SweepSummary fromRecords(const LoadedRecords &Loaded,
                                  const ReportOptions &Opts = {});
};

/// Renders \p S (and \p Trace when non-null) as the human-readable
/// `tune report` output.
void renderReportText(const SweepSummary &S, const TraceSummary *Trace,
                      std::ostream &OS);

/// Renders the same content as one JSON object (pretty-printed, stable
/// key order) for the CI artifact and downstream tooling.
void renderReportJson(const SweepSummary &S, const TraceSummary *Trace,
                      std::ostream &OS);

} // namespace g80

#endif // G80TUNE_CORE_REPORT_H
