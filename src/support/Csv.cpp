//===- support/Csv.cpp ----------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

using namespace g80;

std::string CsvWriter::escape(const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::writeRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I != Cells.size(); ++I) {
    if (I != 0)
      OS << ',';
    OS << escape(Cells[I]);
  }
  OS << '\n';
}
