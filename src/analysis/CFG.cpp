//===- analysis/CFG.cpp ---------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace g80;

namespace {

/// Incremental CFG construction state shared by the structured walk.
struct CfgBuilder {
  std::vector<BasicBlock> &Blocks;
  unsigned &NumInstrs;

  unsigned newBlock(unsigned Depth) {
    Blocks.emplace_back();
    Blocks.back().LoopDepth = Depth;
    return static_cast<unsigned>(Blocks.size() - 1);
  }

  void edge(unsigned From, unsigned To) {
    Blocks[From].Succs.push_back(To);
    Blocks[To].Preds.push_back(From);
  }

  /// Walks \p B appending to block \p Cur; returns the block that control
  /// falls out of.
  unsigned walk(const Body &B, unsigned Cur, unsigned Depth) {
    for (const BodyNode &N : B) {
      if (N.isInstr()) {
        Blocks[Cur].Instrs.push_back(&N.instr());
        Blocks[Cur].InstrIds.push_back(NumInstrs++);
        continue;
      }
      if (N.isLoop()) {
        const Loop &L = N.loop();
        unsigned Header = newBlock(Depth + 1);
        unsigned BodyEnd = walk(L.LoopBody, Header, Depth + 1);
        unsigned After = newBlock(Depth);
        if (L.TripCount > 0) {
          // Trip >= 1: the body always runs, so the preheader reaches only
          // the header and the latch alone reaches the exit.
          edge(Cur, Header);
          if (L.TripCount > 1)
            edge(BodyEnd, Header);
          edge(BodyEnd, After);
        } else {
          // Zero-trip (rejected by the verifier): body is unreachable.
          edge(Cur, After);
        }
        Cur = After;
        continue;
      }
      const If &IfN = N.ifNode();
      Blocks[Cur].BranchPred = IfN.Pred;
      unsigned ThenEntry = newBlock(Depth);
      unsigned ThenEnd = walk(IfN.Then, ThenEntry, Depth);
      unsigned ElseEntry = ~0u, ElseEnd = ~0u;
      if (!IfN.Else.empty()) {
        ElseEntry = newBlock(Depth);
        ElseEnd = walk(IfN.Else, ElseEntry, Depth);
      }
      unsigned Join = newBlock(Depth);
      edge(Cur, ThenEntry);
      edge(Cur, ElseEntry != ~0u ? ElseEntry : Join);
      edge(ThenEnd, Join);
      if (ElseEnd != ~0u)
        edge(ElseEnd, Join);
      Cur = Join;
    }
    return Cur;
  }
};

} // namespace

Cfg::Cfg(const Kernel &K) {
  CfgBuilder B{Blocks, NumInstrs};
  unsigned Entry = B.newBlock(0);
  Exit = B.walk(K.body(), Entry, 0);
  computeRpo();
  computeDominators();
}

void Cfg::computeRpo() {
  // Iterative post-order DFS from the entry.
  std::vector<uint8_t> State(Blocks.size(), 0); // 0 new, 1 open, 2 done
  std::vector<unsigned> PostOrder;
  PostOrder.reserve(Blocks.size());
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(entry(), 0);
  State[entry()] = 1;
  while (!Stack.empty()) {
    auto &[BlockId, NextSucc] = Stack.back();
    if (NextSucc < Blocks[BlockId].Succs.size()) {
      unsigned S = Blocks[BlockId].Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[BlockId] = 2;
    PostOrder.push_back(BlockId);
    Stack.pop_back();
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  RpoIndex.assign(Blocks.size(), ~0u);
  for (unsigned I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

void Cfg::computeDominators() {
  Idom.assign(Blocks.size(), ~0u);
  if (Rpo.empty())
    return;
  Idom[entry()] = entry();
  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : Rpo) {
      if (B == entry())
        continue;
      unsigned NewIdom = ~0u;
      for (unsigned P : Blocks[B].Preds) {
        if (Idom[P] == ~0u)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == ~0u ? P : Intersect(P, NewIdom);
      }
      assert(NewIdom != ~0u && "reachable block with no processed preds");
      if (Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool Cfg::dominates(unsigned A, unsigned B) const {
  assert(reachable(A) && reachable(B) && "dominance of unreachable block");
  while (B != A && B != entry())
    B = Idom[B];
  return B == A;
}
