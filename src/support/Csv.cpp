//===- support/Csv.cpp ----------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

using namespace g80;

void CsvWriter::appendEscaped(const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting) {
    Buf += Cell;
    return;
  }
  Buf += '"';
  for (char C : Cell) {
    if (C == '"')
      Buf += '"';
    Buf += C;
  }
  Buf += '"';
}

void CsvWriter::writeRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I != Cells.size(); ++I) {
    if (I != 0)
      Buf += ',';
    appendEscaped(Cells[I]);
  }
  Buf += '\n';
  if (Buf.size() >= Limit)
    flush();
}

void CsvWriter::flush() {
  if (Buf.empty())
    return;
  OS.write(Buf.data(), std::streamsize(Buf.size()));
  Buf.clear();
}

std::vector<std::vector<std::string>> g80::parseCsv(std::string_view Text) {
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Row;
  std::string Cell;
  bool InQuotes = false;
  bool CellStarted = false; // Distinguishes an empty final line from "".

  auto EndCell = [&] {
    Row.push_back(std::move(Cell));
    Cell.clear();
    CellStarted = false;
  };
  auto EndRow = [&] {
    EndCell();
    Rows.push_back(std::move(Row));
    Row.clear();
  };

  for (size_t I = 0; I != Text.size(); ++I) {
    char C = Text[I];
    if (InQuotes) {
      if (C == '"') {
        if (I + 1 < Text.size() && Text[I + 1] == '"') {
          Cell += '"'; // Doubled quote: one literal quote.
          ++I;
        } else {
          InQuotes = false;
        }
      } else {
        Cell += C;
      }
      continue;
    }
    switch (C) {
    case '"':
      InQuotes = true;
      CellStarted = true;
      break;
    case ',':
      EndCell();
      CellStarted = true; // A comma promises another cell.
      break;
    case '\r':
      if (I + 1 < Text.size() && Text[I + 1] == '\n')
        ++I;
      EndRow();
      break;
    case '\n':
      EndRow();
      break;
    default:
      Cell += C;
      CellStarted = true;
    }
  }
  // Final row without a trailing line break.
  if (CellStarted || !Row.empty() || !Cell.empty())
    EndRow();
  return Rows;
}
