//===- tests/ToyApps.h - synthetic apps for sweep/durability tests --------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A small synthetic TunableApp whose kernels are trivially valid at every
// configuration, so the whole raw space is a candidate set and injected or
// simulated failures are the only source of quarantine.  Shared between
// FaultToleranceTest (quarantine semantics) and DurabilityTest (journal,
// resume, isolation) so both exercise the exact same space.
//
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_TESTS_TOYAPPS_H
#define G80TUNE_TESTS_TOYAPPS_H

#include "core/TunableApp.h"
#include "emu/Emulator.h"
#include "ptx/Builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace g80 {

/// A (5 block sizes x NumChains chain lengths) synthetic app.  The default
/// 20 chains give the classic 100-config quarantine space; 100 chains give
/// the 500-config acceptance space for durable-sweep tests.
class ToyApp : public TunableApp {
public:
  explicit ToyApp(int NumChains = 20) {
    Space.addDim("tpb", {32, 64, 96, 128, 160});
    std::vector<int> Chains;
    for (int I = 1; I <= NumChains; ++I)
      Chains.push_back(I);
    Space.addDim("chain", Chains);
  }

  std::string_view name() const override { return "toy"; }
  const ConfigSpace &space() const override { return Space; }

  Kernel buildKernel(const ConfigPoint &P) const override {
    unsigned Chain = unsigned(Space.valueOf(P, "chain"));
    KernelBuilder B("toy_c" + std::to_string(Chain));
    unsigned Out = B.addGlobalPtr("out");
    Reg Tx = B.mov(B.special(SpecialReg::TidX));
    Reg Addr = B.shli(Tx, B.imm(2));
    Reg Acc = B.mov(B.imm(0.0f));
    B.forLoop(Chain, [&] { B.emitTo(Acc, Opcode::AddF, Acc, B.imm(1.0f)); });
    B.stGlobal(Out, Addr, 0, Acc);
    return B.take();
  }

  LaunchConfig launch(const ConfigPoint &P) const override {
    unsigned Tpb = unsigned(Space.valueOf(P, "tpb"));
    return LaunchConfig(Dim3(16), Dim3(Tpb));
  }

  double verifyConfig(const ConfigPoint &P) const override {
    unsigned Tpb = unsigned(Space.valueOf(P, "tpb"));
    unsigned Chain = unsigned(Space.valueOf(P, "chain"));
    Kernel K = buildKernel(P);
    DeviceBuffer Buf = DeviceBuffer::zeroed(Tpb);
    LaunchBindings Bind(K);
    Bind.bindBuffer(0, &Buf);
    if (!emulateKernel(K, launch(P), Bind))
      return std::numeric_limits<double>::infinity();
    double Worst = 0;
    for (unsigned I = 0; I != Tpb; ++I)
      Worst = std::max(
          Worst, double(std::abs(Buf.floatAt(I) - float(Chain))));
    return Worst;
  }

private:
  ConfigSpace Space;
};

} // namespace g80

#endif // G80TUNE_TESTS_TOYAPPS_H
