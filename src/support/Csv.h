//===- support/Csv.h - CSV output ------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer (RFC-4180 quoting).  Benchmark harnesses can emit the
/// data behind each figure as CSV for external plotting, in addition to the
/// human-readable TextTable rendering.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SUPPORT_CSV_H
#define G80TUNE_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace g80 {

/// Streams rows of cells to an std::ostream as CSV.  Cells containing
/// commas, quotes or newlines are quoted; embedded quotes are doubled.
///
/// Rows accumulate in an internal buffer and reach the stream in
/// BufferLimit-sized writes (cell-at-a-time operator<< on an ofstream is
/// measurably slow for whole-space dumps); the destructor flushes, or
/// call flush() to force bytes out early.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream &OS, size_t BufferLimit = 1 << 16)
      : OS(OS), Limit(BufferLimit) {}
  ~CsvWriter() { flush(); }

  CsvWriter(const CsvWriter &) = delete;
  CsvWriter &operator=(const CsvWriter &) = delete;

  /// Writes one row.
  void writeRow(const std::vector<std::string> &Cells);

  /// Pushes buffered rows to the stream.
  void flush();

private:
  void appendEscaped(const std::string &Cell);

  std::ostream &OS;
  std::string Buf;
  size_t Limit;
};

/// Parses RFC-4180 CSV text into rows of cells: quoted cells may contain
/// commas, doubled quotes, and line breaks; rows end at LF or CRLF.  The
/// exact inverse of CsvWriter for everything it emits, so writer/parser
/// round-trips are testable.
std::vector<std::vector<std::string>> parseCsv(std::string_view Text);

} // namespace g80

#endif // G80TUNE_SUPPORT_CSV_H
