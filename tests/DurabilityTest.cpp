//===- tests/DurabilityTest.cpp - journal, subprocess, durable sweeps -----===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The durable sweep-execution layer, bottom up: the checksummed
// write-ahead journal (torn-tail and corruption semantics), the forked
// worker transport, the EvalRecord wire format, and SweepDriver end to end
// — journaled runs equal in-memory runs, the 500-config kill/resume
// acceptance scenario re-measures nothing, and isolated workers that crash
// or hang cost exactly the in-flight configuration.
//
//===----------------------------------------------------------------------===//

#include "ToyApps.h"

#include "core/EvalRecord.h"
#include "core/Search.h"
#include "core/SweepDriver.h"
#include "kernels/Cp.h"
#include "support/FaultInjection.h"
#include "support/Journal.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <unistd.h>
#endif

using namespace g80;

namespace {

MachineModel gtx() { return MachineModel::geForce8800Gtx(); }

std::string tmpPath(const char *Name) {
  std::string Path = testing::TempDir() + "g80_dur_" + Name + ".jsonl";
  std::remove(Path.c_str());
  return Path;
}

JournalHeader header(const char *App = "toy", uint64_t Seed = 1) {
  JournalHeader H;
  H.App = App;
  H.Machine = "GeForce 8800 GTX";
  H.Strategy = "exhaustive";
  H.Seed = Seed;
  H.Budget = 0;
  H.RawSize = 100;
  return H;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

//===--- Journal primitives ----------------------------------------------------//

TEST(JsonHelpers, EscapeRoundTripsControlCharacters) {
  std::string Nasty = "a\"b\\c\nd\re\tf\x01g";
  EXPECT_EQ(jsonUnescape(jsonEscape(Nasty)), Nasty);
  EXPECT_EQ(jsonEscape(Nasty).find('\n'), std::string::npos);
}

TEST(JsonHelpers, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Journal, RoundTrip) {
  std::string Path = tmpPath("roundtrip");
  JournalHeader H = header();
  H.Extra = "inject=\"x\"";
  Expected<JournalWriter> W = JournalWriter::create(Path, H);
  ASSERT_TRUE(W.ok()) << W.diag().Message;
  std::vector<std::string> Payloads = {
      "{\"idx\":0}", "{\"idx\":1,\"msg\":\"a,b\"}", "{\"idx\":2}"};
  for (const std::string &P : Payloads)
    ASSERT_TRUE(W->appendRecord(P).ok());
  W->close();

  Expected<JournalContents> R = readJournal(Path);
  ASSERT_TRUE(R.ok()) << R.diag().Message;
  EXPECT_TRUE(R->Header.matches(H));
  EXPECT_EQ(R->Records, Payloads);
  EXPECT_FALSE(R->DroppedTornTail);
  EXPECT_EQ(R->ValidBytes, slurp(Path).size());
}

TEST(Journal, HeaderFingerprintComparesEveryField) {
  JournalHeader H = header();
  EXPECT_TRUE(H.matches(header()));
  JournalHeader M;
  M = header();
  M.App = "cp";
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.Machine = "other";
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.Strategy = "random";
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.Seed = 2;
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.Budget = 9;
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.RawSize = 99;
  EXPECT_FALSE(H.matches(M));
  M = header();
  M.Extra = "inject";
  EXPECT_FALSE(H.matches(M));
}

TEST(Journal, MissingFileAndBadHeaderAreErrors) {
  Expected<JournalContents> Missing = readJournal(tmpPath("missing"));
  ASSERT_FALSE(Missing.ok());
  EXPECT_EQ(Missing.diag().Code, ErrorCode::JournalError);

  std::string Path = tmpPath("badheader");
  spit(Path, "not a journal at all\n");
  Expected<JournalContents> Bad = readJournal(Path);
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.diag().Code, ErrorCode::JournalError);
}

TEST(Journal, TornTailDroppedThenAppendTruncates) {
  std::string Path = tmpPath("torn");
  Expected<JournalWriter> W = JournalWriter::create(Path, header());
  ASSERT_TRUE(W.ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":0}").ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":1}").ok());
  W->close();

  // The kill landed mid-write of record 2.
  {
    std::ofstream App(Path, std::ios::app | std::ios::binary);
    App << "{\"crc\":\"dead";
  }
  Expected<JournalContents> R = readJournal(Path);
  ASSERT_TRUE(R.ok()) << R.diag().Message;
  EXPECT_TRUE(R->DroppedTornTail);
  ASSERT_EQ(R->Records.size(), 2u);

  // Appending truncates the tail away and continues cleanly.
  Expected<JournalWriter> A = JournalWriter::append(Path, R->ValidBytes);
  ASSERT_TRUE(A.ok()) << A.diag().Message;
  ASSERT_TRUE(A->appendRecord("{\"idx\":2}").ok());
  A->close();

  Expected<JournalContents> R2 = readJournal(Path);
  ASSERT_TRUE(R2.ok()) << R2.diag().Message;
  EXPECT_FALSE(R2->DroppedTornTail);
  std::vector<std::string> Want = {"{\"idx\":0}", "{\"idx\":1}",
                                   "{\"idx\":2}"};
  EXPECT_EQ(R2->Records, Want);
}

TEST(Journal, BitFlipInFinalRecordIsATornTail) {
  std::string Path = tmpPath("flip_last");
  Expected<JournalWriter> W = JournalWriter::create(Path, header());
  ASSERT_TRUE(W.ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":0}").ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":1}").ok());
  W->close();

  std::string Bytes = slurp(Path);
  Bytes[Bytes.size() - 3] ^= 0x20; // inside the final record's payload
  spit(Path, Bytes);

  Expected<JournalContents> R = readJournal(Path);
  ASSERT_TRUE(R.ok()) << R.diag().Message;
  EXPECT_TRUE(R->DroppedTornTail);
  ASSERT_EQ(R->Records.size(), 1u);
  EXPECT_EQ(R->Records[0], "{\"idx\":0}");
}

TEST(Journal, CorruptionBeforeFinalRecordIsAHardError) {
  std::string Path = tmpPath("flip_mid");
  Expected<JournalWriter> W = JournalWriter::create(Path, header());
  ASSERT_TRUE(W.ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":0}").ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":1}").ok());
  ASSERT_TRUE(W->appendRecord("{\"idx\":2}").ok());
  W->close();

  std::string Bytes = slurp(Path);
  size_t FirstRec = Bytes.find('\n') + 1;
  size_t Mid = Bytes.find("idx\":0", FirstRec);
  ASSERT_NE(Mid, std::string::npos);
  Bytes[Mid] ^= 0x20; // damage a record that is *not* the torn tail
  spit(Path, Bytes);

  Expected<JournalContents> R = readJournal(Path);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::JournalError);
}

//===--- Forked worker transport -----------------------------------------------//

#ifndef _WIN32

TEST(SubprocessTest, LinesThenCleanExit) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  Subprocess P = Subprocess::spawn([](const Subprocess::Emit &Emit) {
    Emit("one");
    Emit("two");
    Emit("three");
  });
  ASSERT_TRUE(P.valid());
  std::string Line;
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Line);
  EXPECT_EQ(Line, "one");
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Line);
  EXPECT_EQ(Line, "two");
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Line);
  EXPECT_EQ(Line, "three");
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Exited);
  EXPECT_EQ(P.exitStatus().K, WorkerExit::Kind::CleanExit);
  EXPECT_EQ(P.exitStatus().Code, 0);
}

TEST(SubprocessTest, CrashObservedAsSignal) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  Subprocess P = Subprocess::spawn([](const Subprocess::Emit &Emit) {
    Emit("before");
    raise(SIGSEGV);
  });
  ASSERT_TRUE(P.valid());
  std::string Line;
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Line);
  EXPECT_EQ(Line, "before");
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Exited);
  EXPECT_EQ(P.exitStatus().K, WorkerExit::Kind::Signaled);
  EXPECT_EQ(P.exitStatus().Code, SIGSEGV);
}

TEST(SubprocessTest, NonzeroExitObservedAsBadExit) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  Subprocess P = Subprocess::spawn(
      [](const Subprocess::Emit &) { _exit(7); });
  ASSERT_TRUE(P.valid());
  std::string Line;
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Exited);
  EXPECT_EQ(P.exitStatus().K, WorkerExit::Kind::BadExit);
  EXPECT_EQ(P.exitStatus().Code, 7);
}

TEST(SubprocessTest, HangObservedAsTimeoutThenKilled) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  Subprocess P = Subprocess::spawn([](const Subprocess::Emit &Emit) {
    Emit("alive");
    for (;;)
      sleep(1000);
  });
  ASSERT_TRUE(P.valid());
  std::string Line;
  ASSERT_EQ(P.poll(5.0, Line), Subprocess::Poll::Line);
  ASSERT_EQ(P.poll(0.1, Line), Subprocess::Poll::Timeout);
  P.kill();
  EXPECT_EQ(P.exitStatus().K, WorkerExit::Kind::Signaled);
}

#endif // !_WIN32

//===--- EvalRecord wire format ------------------------------------------------//

TEST(EvalRecordTest, JsonRoundTripIsBitIdentical) {
  EvalRecord R;
  R.Index = 42;
  R.Point = {64, 16, -1, 4, 2};
  R.Expressible = true;
  R.Valid = true;
  R.Efficiency = 1.0 / 3.0;
  R.Utilization = 162.41119691119692;
  R.Measured = true;
  R.TimeSeconds = 0.0011016592592592593;
  R.SimSeconds = 1e-300;
  R.Cycles = 1487240;

  Expected<EvalRecord> Back = EvalRecord::fromJson(R.toJson());
  ASSERT_TRUE(Back.ok()) << Back.diag().Message;
  EXPECT_EQ(Back->Index, R.Index);
  EXPECT_EQ(Back->Point, R.Point);
  EXPECT_EQ(Back->Expressible, R.Expressible);
  EXPECT_EQ(Back->Valid, R.Valid);
  EXPECT_EQ(Back->Efficiency, R.Efficiency);
  EXPECT_EQ(Back->Utilization, R.Utilization);
  EXPECT_EQ(Back->Measured, R.Measured);
  EXPECT_EQ(Back->TimeSeconds, R.TimeSeconds);
  EXPECT_EQ(Back->SimSeconds, R.SimSeconds);
  EXPECT_EQ(Back->Cycles, R.Cycles);
  EXPECT_FALSE(Back->failed());
}

TEST(EvalRecordTest, FailureRoundTripKeepsDiagnostic) {
  EvalRecord R;
  R.Index = 7;
  R.Point = {32, 1};
  R.Code = ErrorCode::WorkerTimeout;
  R.At = Stage::Simulate;
  R.Message = "worker exceeded 0.25s\nwith \"quotes\", commas";
  Expected<EvalRecord> Back = EvalRecord::fromJson(R.toJson());
  ASSERT_TRUE(Back.ok()) << Back.diag().Message;
  EXPECT_EQ(Back->Code, ErrorCode::WorkerTimeout);
  EXPECT_EQ(Back->At, Stage::Simulate);
  EXPECT_EQ(Back->Message, R.Message);
  EXPECT_TRUE(Back->failed());
}

TEST(EvalRecordTest, GarbageJsonIsRejected) {
  EXPECT_FALSE(EvalRecord::fromJson("").ok());
  EXPECT_FALSE(EvalRecord::fromJson("{}").ok());
  EXPECT_FALSE(EvalRecord::fromJson("{\"idx\":1}").ok());
}

TEST(EvalRecordTest, CsvRowAlignsWithHeader) {
  EvalRecord R;
  R.Point = {1, 2, 3};
  EXPECT_EQ(R.csvRow().size(), EvalRecord::csvHeader().size());
}

//===--- SweepDriver end to end ------------------------------------------------//

const ToyApp &toy100() {
  static ToyApp App(20);
  return App;
}

/// The 500-configuration acceptance space (5 block sizes x 100 chains).
const ToyApp &toy500() {
  static ToyApp App(100);
  return App;
}

JournalHeader toyFp(const ToyApp &App, const std::string &Extra = "") {
  JournalHeader H;
  H.App = "toy";
  H.Machine = gtx().Name;
  H.Strategy = "exhaustive";
  H.RawSize = App.space().rawSize();
  H.Extra = Extra;
  return H;
}

void expectEqualOutcomes(const SearchOutcome &Got,
                         const SearchOutcome &Want) {
  EXPECT_EQ(Got.Candidates, Want.Candidates);
  std::vector<size_t> GotQ = Got.Quarantined, WantQ = Want.Quarantined;
  std::sort(GotQ.begin(), GotQ.end());
  std::sort(WantQ.begin(), WantQ.end());
  EXPECT_EQ(GotQ, WantQ);
  EXPECT_EQ(Got.BestIndex, Want.BestIndex);
  EXPECT_EQ(Got.BestTime, Want.BestTime);
  EXPECT_EQ(Got.TotalMeasuredSeconds, Want.TotalMeasuredSeconds);
}

TEST(SweepDriverTest, JournaledOutcomeEqualsInMemory) {
  SearchEngine Engine(toy100(), gtx());
  SearchOutcome Want = Engine.exhaustive();

  SweepOptions Opts;
  Opts.JournalPath = tmpPath("drv_plain");
  Opts.Fingerprint = toyFp(toy100());
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  expectEqualOutcomes(Rep.Outcome, Want);

  // One journal record per candidate.
  Expected<JournalContents> J = readJournal(Opts.JournalPath);
  ASSERT_TRUE(J.ok());
  EXPECT_EQ(J->Records.size(), Want.Candidates.size());
}

TEST(SweepDriverTest, IsolatedOutcomeEqualsInMemory) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  SearchEngine Engine(toy100(), gtx());
  SearchOutcome Want = Engine.exhaustive();

  SweepOptions Opts;
  Opts.Isolate = true;
  Opts.ShardSize = 7; // deliberately not a divisor of 100
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  EXPECT_EQ(Rep.WorkerRetries, 0u);
  expectEqualOutcomes(Rep.Outcome, Want);
}

/// The acceptance scenario: a 500-config journaled sweep is killed
/// mid-flight; `--resume` re-measures nothing already journaled and
/// reports the same best configuration and quarantine set as the
/// uninterrupted run.
TEST(SweepDriverTest, Acceptance500KillAndResume) {
  SearchEngine Engine(toy500(), gtx());
  std::string Path = tmpPath("accept500");

  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Fingerprint = toyFp(toy500());
  SweepReport Full = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Full.Status, SweepStatus::Completed);
  ASSERT_EQ(Full.Outcome.Candidates.size(), 500u);

  // SIGKILL after 123 fsync'd records: keep header + 123 lines.
  std::ifstream In(Path);
  std::string Line, Kept;
  for (size_t N = 0; N != 124 && std::getline(In, Line); ++N)
    Kept += Line + "\n";
  In.close();
  spit(Path, Kept);

  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, 123u);
  expectEqualOutcomes(Res.Outcome, Full.Outcome);

  // Resuming the now-complete journal re-measures nothing at all.
  SweepReport Res2 = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res2.Status, SweepStatus::Completed);
  EXPECT_EQ(Res2.ResumedSkipped, 500u);
  expectEqualOutcomes(Res2.Outcome, Full.Outcome);
}

TEST(SweepDriverTest, IsolatedCrashAndHangQuarantineOnlyVictims) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  FaultPlan Plan;
  Plan.Actions.push_back({7, FaultAction::Crash});
  Plan.Actions.push_back({13, FaultAction::Hang});
  SearchEngine Engine(toy100(), gtx(), {}, {}, Plan);
  SearchOutcome Base = SearchEngine(toy100(), gtx()).exhaustive();

  SweepOptions Opts;
  Opts.Isolate = true;
  Opts.ShardSize = 8;
  Opts.TaskTimeoutSeconds = 0.25;
  Opts.RetryBackoff.InitialSeconds = 0.01;
  Opts.JournalPath = tmpPath("crashhang");
  Opts.Fingerprint = toyFp(toy100(), "crash@7,hang@13");
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());

  // The parent survived, both victims were retried once in a fresh worker,
  // and only they were quarantined.
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  EXPECT_EQ(Rep.WorkerRetries, 2u);
  std::vector<size_t> WantQ = {7, 13};
  EXPECT_EQ(Rep.Outcome.Quarantined, WantQ);
  EXPECT_EQ(Rep.Outcome.Evals[7].Failure.Code, ErrorCode::WorkerCrashed);
  EXPECT_EQ(Rep.Outcome.Evals[13].Failure.Code, ErrorCode::WorkerTimeout);
  EXPECT_EQ(Rep.Outcome.Evals[7].Failure.At, Stage::Simulate);
  EXPECT_EQ(Rep.Outcome.Evals[13].Failure.At, Stage::Simulate);

  // Every other configuration measured exactly as an uninjected sweep.
  EXPECT_EQ(Rep.Outcome.Candidates.size(), 100u);
  for (size_t I = 0; I != 100; ++I) {
    if (I == 7 || I == 13)
      continue;
    EXPECT_TRUE(Rep.Outcome.Evals[I].Measured) << I;
    EXPECT_EQ(Rep.Outcome.Evals[I].TimeSeconds, Base.Evals[I].TimeSeconds)
        << I;
  }
  ASSERT_TRUE(Rep.Outcome.hasBest());
  EXPECT_EQ(Rep.Outcome.BestIndex, Base.BestIndex);

  // The quarantine records made it into the journal too: resuming skips
  // everything, including the victims.
  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, 100u);
  EXPECT_EQ(Res.Outcome.Quarantined, WantQ);
}

TEST(SweepDriverTest, InProcessActionsDegradeToQuarantine) {
  // Without isolation a crash/hang action must not take the process down
  // (or hang it): it is converted to a quarantine diagnostic.
  FaultPlan Plan;
  Plan.Actions.push_back({3, FaultAction::Crash});
  Plan.Actions.push_back({5, FaultAction::Hang});
  SearchEngine Engine(toy100(), gtx(), {}, {}, Plan);

  SweepOptions Opts; // no Isolate
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  std::vector<size_t> WantQ = {3, 5};
  EXPECT_EQ(Rep.Outcome.Quarantined, WantQ);
  EXPECT_EQ(Rep.Outcome.Evals[3].Failure.Code, ErrorCode::WorkerCrashed);
  EXPECT_EQ(Rep.Outcome.Evals[5].Failure.Code, ErrorCode::WorkerTimeout);
  ASSERT_TRUE(Rep.Outcome.hasBest());
}

TEST(SweepDriverTest, RealAppJournaledResumeMatchesPlain) {
  // A real kernel app, not the toy: cp's exhaustive sweep, killed after
  // ten records, must resume to the in-memory outcome.
  CpApp App(CpProblem::bench());
  SearchEngine Engine(App, gtx());
  SearchOutcome Want = Engine.exhaustive();

  std::string Path = tmpPath("cp_resume");
  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Fingerprint.App = std::string(App.name());
  Opts.Fingerprint.Machine = gtx().Name;
  Opts.Fingerprint.Strategy = "exhaustive";
  Opts.Fingerprint.RawSize = App.space().rawSize();
  SweepReport Full = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Full.Status, SweepStatus::Completed);

  std::ifstream In(Path);
  std::string Line, Kept;
  for (size_t N = 0; N != 11 && std::getline(In, Line); ++N)
    Kept += Line + "\n";
  In.close();
  spit(Path, Kept);

  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, 10u);
  expectEqualOutcomes(Res.Outcome, Want);
}

//===--- Signal semantics: graceful drain vs force-quit escalation --------===//

#ifndef _WIN32

namespace signalprobe {
// A plain sigaction handler: proof that the *previous* disposition is
// what fires, not the sweep handler.
volatile sig_atomic_t ProbeHits = 0;
extern "C" void probeHandler(int) { ProbeHits = ProbeHits + 1; }
} // namespace signalprobe

TEST(SweepSignalsTest, SingleSignalIsGracefulSecondIsForceQuit) {
  clearSweepInterrupt();
  ScopedSweepSignalHandlers Guard;
  ASSERT_FALSE(sweepInterruptRequested());
  ASSERT_FALSE(sweepForceQuitRequested());

  // First SIGINT: graceful-drain request only.
  ASSERT_EQ(raise(SIGINT), 0);
  EXPECT_TRUE(sweepInterruptRequested());
  EXPECT_FALSE(sweepForceQuitRequested());

  // Second signal (either of the pair): force-quit escalation.
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(sweepInterruptRequested());
  EXPECT_TRUE(sweepForceQuitRequested());

  // Further signals stay a force-quit; nothing wraps or throws.
  ASSERT_EQ(raise(SIGINT), 0);
  EXPECT_TRUE(sweepForceQuitRequested());
  clearSweepInterrupt();
}

TEST(SweepSignalsTest, InterruptedSweepDrainsGracefully) {
  // A sweep that receives one interrupt finishes its record boundary and
  // reports Interrupted — the journal stays resumable, nothing is lost.
  SearchEngine Engine(toy100(), gtx());
  clearSweepInterrupt();
  ScopedSweepSignalHandlers Guard;
  std::atomic<int> Committed{0};
  SweepOptions Opts;
  Opts.JournalPath = tmpPath("sig_drain");
  Opts.Fingerprint = toyFp(toy100());
  Opts.OnProgress = [&](const SweepProgress &) {
    if (++Committed == 3)
      ASSERT_EQ(raise(SIGINT), 0);
  };
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  EXPECT_EQ(Rep.Status, SweepStatus::Interrupted);
  EXPECT_LT(Committed.load(), 100);
  EXPECT_FALSE(sweepForceQuitRequested());
  clearSweepInterrupt();

  // The drained journal resumes cleanly to the full outcome.
  Opts.OnProgress = nullptr;
  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, size_t(Committed.load()));
}

TEST(SweepSignalsTest, PreviousHandlersRestoredAfterScopeExit) {
  clearSweepInterrupt();
  struct sigaction Probe = {};
  Probe.sa_handler = signalprobe::probeHandler;
  sigemptyset(&Probe.sa_mask);
  struct sigaction SavedInt = {}, SavedTerm = {};
  ASSERT_EQ(sigaction(SIGINT, &Probe, &SavedInt), 0);
  ASSERT_EQ(sigaction(SIGTERM, &Probe, &SavedTerm), 0);
  signalprobe::ProbeHits = 0;

  {
    ScopedSweepSignalHandlers Guard;
    // Inside the scope the sweep handler owns the signal: the probe must
    // not fire, the interrupt counter must.
    ASSERT_EQ(raise(SIGINT), 0);
    EXPECT_EQ(int(signalprobe::ProbeHits), 0);
    EXPECT_TRUE(sweepInterruptRequested());
  }

  // After scope exit the probe (the "previous" disposition) fires again
  // and the counter no longer moves.
  clearSweepInterrupt();
  ASSERT_EQ(raise(SIGINT), 0);
  EXPECT_EQ(int(signalprobe::ProbeHits), 1);
  EXPECT_FALSE(sweepInterruptRequested());
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_EQ(int(signalprobe::ProbeHits), 2);

  ASSERT_EQ(sigaction(SIGINT, &SavedInt, nullptr), 0);
  ASSERT_EQ(sigaction(SIGTERM, &SavedTerm, nullptr), 0);
  clearSweepInterrupt();
}

#endif // !_WIN32

} // namespace
