//===- serve/Protocol.h - Serve daemon wire protocol ----------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's message vocabulary.  One JSON object per frame
/// (support/Socket.h), encoded and parsed with the same flat-JSON helpers
/// the journal uses — no external JSON dependency, and the durable result
/// format is deliberately deterministic: two runs of the same request
/// (uninterrupted, or killed and recovered any number of times) produce
/// byte-identical result files, which is what the chaos test asserts.
///
/// Client -> server frames (by "type"):
///   tune      one tuning request (app/machine/strategy/seed/budget/
///             fastbw/lint/deadline; "wait" streams progress + result
///             back on this connection)
///   shard     one fleet shard: candidates [begin,end) of a plan the
///             worker re-derives deterministically and cross-checks by
///             fingerprint (serve/Shard.h)
///   status    queue depth, active jobs, cache hit rate, uptime, ...
///   health    liveness probe (subset of status)
///   shutdown  graceful drain: finish running jobs, then exit
///
/// Server -> client frames:
///   accepted      {"type":"accepted","id":"req-000001"}
///   overloaded    admission queue full — the 429: try again later
///   error         malformed/unsupported request, or draining
///   progress      {"type":"progress","id":...,"done":N,"total":N,...}
///   result        terminal per-request outcome (also the durable spool
///                 record)
///   shard_result  the shard's journal record payloads, in candidate
///                 order — what the coordinator splices into the merged
///                 journal
///   status        the stats snapshot
///   ok            acknowledgement (shutdown)
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SERVE_PROTOCOL_H
#define G80TUNE_SERVE_PROTOCOL_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g80 {

/// One tuning request: which app/space to tune and how.  Also the ticket
/// format spooled to disk, so a killed daemon can re-admit it on restart.
struct TuneRequest {
  std::string App;               ///< matmul | cp | sad | mri.
  std::string Machine = "gtx";   ///< gtx | nextgen.
  std::string Strategy = "pareto"; ///< Any strategyName(); adaptive ones
                                   ///< (greedy/anneal/genetic) are whole-
                                   ///< job only — shards refuse them.
  std::string Space = "small";   ///< small | large (config-space tier).
  uint64_t Seed = 1;
  uint64_t Budget = 16;
  bool FastBw = false;
  bool Lint = false;
  /// Wall-clock budget from admission; 0 = none.  An expired request is
  /// cancelled at the next record boundary and answered with a
  /// deadline-exceeded result.
  double DeadlineSeconds = 0;
  /// Stream progress frames and the final result on this connection.
  /// Without it the reply is just "accepted" — results always land in
  /// the spool either way (fire-and-forget durability).
  bool Wait = false;

  std::string toJson() const;
  static Expected<TuneRequest> fromJson(std::string_view Json);
};

/// A terminal request outcome — the wire "result" frame and the durable
/// .result spool file.  Every field is deterministic for a given request:
/// no timestamps, no retry/resume counts, so recovered runs are
/// byte-identical to uninterrupted ones.
struct TuneResult {
  std::string Id;
  TuneRequest Req;
  std::string Status;  ///< "completed" | "error".
  std::string Error;   ///< Failure detail when Status == "error".
  uint64_t Valid = 0;
  uint64_t Measured = 0;
  uint64_t Quarantined = 0;
  std::string Best;    ///< describe() of the best config; empty if none.
  double BestTime = 0;
  double TotalMeasuredSeconds = 0;

  std::string toJson() const;
  static Expected<TuneResult> fromJson(std::string_view Json);
};

/// One fleet shard assignment: candidates [Begin, End) of the sweep plan
/// the request's tune fields deterministically re-derive.  PlanFp is the
/// coordinator's fingerprint of that plan (serve/Shard.h); a worker whose
/// re-derived plan disagrees refuses the shard, which catches version or
/// configuration skew before it can corrupt a merged journal.
struct ShardRequest {
  TuneRequest Tune;        ///< Wait/DeadlineSeconds are ignored.
  uint64_t PlanFp = 0;
  uint64_t ShardIndex = 0;
  uint64_t Begin = 0;      ///< First candidate position (inclusive).
  uint64_t End = 0;        ///< One past the last candidate position.

  std::string toJson() const;
  static Expected<ShardRequest> fromJson(std::string_view Json);
};

/// A shard's terminal outcome: on success, exactly End-Begin journal
/// record payloads in candidate order, byte-identical to what a local
/// single-daemon sweep would have appended for those candidates.
struct ShardResult {
  uint64_t ShardIndex = 0;
  uint64_t PlanFp = 0;
  uint64_t Begin = 0;
  uint64_t End = 0;
  std::string Status;      ///< "completed" | "error".
  std::string Error;       ///< Failure detail when Status == "error".
  std::vector<std::string> Records;

  bool completed() const { return Status == "completed"; }

  std::string toJson() const;
  static Expected<ShardResult> fromJson(std::string_view Json);
};

/// The status/health snapshot frame.
struct ServeStatus {
  uint64_t QueueDepth = 0;
  uint64_t QueueLimit = 0;
  uint64_t Active = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;
  uint64_t Recovered = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t ShardsServed = 0;
  double UptimeSeconds = 0;
  bool Draining = false;

  /// Engine-registry hit rate in [0, 1]; 0 when nothing was requested.
  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total == 0 ? 0.0 : double(CacheHits) / double(Total);
  }

  std::string toJson() const;
  static Expected<ServeStatus> fromJson(std::string_view Json);
};

/// Extracts the "type" discriminator from a request/response frame.
/// Empty string when absent.
std::string frameType(std::string_view Json);

/// Canned small frames.
std::string acceptedFrame(const std::string &Id);
std::string overloadedFrame(uint64_t QueueDepth, uint64_t QueueLimit);
std::string errorFrame(const std::string &Message);
std::string progressFrame(const std::string &Id, uint64_t Done,
                          uint64_t Total, uint64_t Quarantined);
std::string okFrame();

/// Serializes \p V the way EvalRecord does (%.17g): round-trip exact,
/// locale-independent, deterministic.
std::string serveDouble(double V);

} // namespace g80

#endif // G80TUNE_SERVE_PROTOCOL_H
