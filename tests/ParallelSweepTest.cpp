//===- tests/ParallelSweepTest.cpp - thread pool + parallel sweeps --------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The parallel execution layer, bottom up: the work-stealing thread pool,
// parallel static-metric evaluation, and the SweepDriver's parallel
// in-process path.  The contract under test everywhere is *bit-identity*:
// any job count must produce the same journal bytes, the same outcome
// totals, and the same quarantine set as a serial run — including under
// fault injection and across a mid-sweep interrupt + resume.  The
// bandwidth fast path rides along since it shares the measure() hot path.
//
//===----------------------------------------------------------------------===//

#include "ToyApps.h"

#include "core/Search.h"
#include "core/SweepDriver.h"
#include "kernels/MatMul.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace g80;

namespace {

MachineModel gtx() { return MachineModel::geForce8800Gtx(); }

std::string tmpPath(const char *Name) {
  std::string Path = testing::TempDir() + "g80_par_" + Name + ".jsonl";
  std::remove(Path.c_str());
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

//===--- ThreadPool -----------------------------------------------------------//

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round != 5; ++Round) {
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 50);
  }
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool Pool(3);
  Pool.wait(); // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    for (int I = 0; I != 200; ++I)
      Pool.submit([&Count] { ++Count; });
    // No wait(): teardown must finish the queue, not drop it.
  }
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  const size_t N = 1337;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(Pool, N, 7, [&Hits](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateShapes) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  parallelFor(Pool, 0, 8, [&Count](size_t) { ++Count; }); // empty range
  EXPECT_EQ(Count.load(), 0);
  parallelFor(Pool, 3, 100, [&Count](size_t) { ++Count; }); // grain > N
  EXPECT_EQ(Count.load(), 3);
}

//===--- Parallel static-metric evaluation -------------------------------------//

TEST(ParallelEvaluation, MetricsIdenticalForAnyJobCount) {
  MatMulApp App(MatMulProblem::emulation());
  // Fresh evaluators: the memo would otherwise hand the second call a
  // copy of the first result and prove nothing.
  Evaluator Serial(App, gtx());
  Evaluator Parallel(App, gtx());
  std::vector<ConfigEval> A = Serial.evaluateMetrics(1);
  std::vector<ConfigEval> B = Parallel.evaluateMetrics(8);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].FlatIndex, B[I].FlatIndex);
    EXPECT_EQ(A[I].Point, B[I].Point);
    EXPECT_EQ(A[I].Expressible, B[I].Expressible);
    EXPECT_EQ(A[I].Metrics.Valid, B[I].Metrics.Valid);
    EXPECT_EQ(A[I].Metrics.Efficiency, B[I].Metrics.Efficiency);
    EXPECT_EQ(A[I].Metrics.Utilization, B[I].Metrics.Utilization);
    EXPECT_EQ(A[I].EfficiencyTotal, B[I].EfficiencyTotal);
    EXPECT_EQ(A[I].failed(), B[I].failed());
  }
}

TEST(ParallelEvaluation, MemoizedSecondCallMatchesFirst) {
  ToyApp App(5);
  Evaluator E(App, gtx());
  std::vector<ConfigEval> First = E.evaluateMetrics(4);
  std::vector<ConfigEval> Second = E.evaluateMetrics(1);
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I != First.size(); ++I) {
    EXPECT_EQ(First[I].FlatIndex, Second[I].FlatIndex);
    EXPECT_EQ(First[I].EfficiencyTotal, Second[I].EfficiencyTotal);
  }
}

TEST(ParallelEvaluation, PlansIdenticalForAnyJobCount) {
  MatMulApp App(MatMulProblem::emulation());
  SweepPlan A = SearchEngine(App, gtx()).planExhaustive(1);
  SweepPlan B = SearchEngine(App, gtx()).planExhaustive(8);
  EXPECT_EQ(A.Strategy, B.Strategy);
  EXPECT_EQ(A.Candidates, B.Candidates);
  ASSERT_EQ(A.Evals.size(), B.Evals.size());
}

//===--- Parallel sweeps: byte-identity ----------------------------------------//

const ToyApp &toy100() {
  static ToyApp App(20);
  return App;
}

JournalHeader toyFp(const ToyApp &App, const std::string &Extra = "") {
  JournalHeader H;
  H.App = "toy";
  H.Machine = gtx().Name;
  H.Strategy = "exhaustive";
  H.RawSize = App.space().rawSize();
  H.Extra = Extra;
  return H;
}

void expectEqualOutcomes(const SearchOutcome &Got,
                         const SearchOutcome &Want) {
  EXPECT_EQ(Got.Candidates, Want.Candidates);
  EXPECT_EQ(Got.Quarantined, Want.Quarantined);
  EXPECT_EQ(Got.BestIndex, Want.BestIndex);
  EXPECT_EQ(Got.BestTime, Want.BestTime);
  EXPECT_EQ(Got.TotalMeasuredSeconds, Want.TotalMeasuredSeconds);
  ASSERT_EQ(Got.Evals.size(), Want.Evals.size());
  for (size_t I = 0; I != Got.Evals.size(); ++I) {
    EXPECT_EQ(Got.Evals[I].Measured, Want.Evals[I].Measured) << I;
    EXPECT_EQ(Got.Evals[I].TimeSeconds, Want.Evals[I].TimeSeconds) << I;
    EXPECT_EQ(Got.Evals[I].Sim.Cycles, Want.Evals[I].Sim.Cycles) << I;
  }
}

/// Runs toy100's exhaustive sweep at the given job count, journaling to a
/// fresh file; returns the report after asserting completion.
SweepReport runToySweep(const SearchEngine &Engine, const std::string &Path,
                        unsigned Jobs, const std::string &Extra = "") {
  clearSweepInterrupt();
  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Fingerprint = toyFp(toy100(), Extra);
  Opts.Jobs = Jobs;
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  EXPECT_EQ(Rep.Status, SweepStatus::Completed);
  return Rep;
}

TEST(ParallelSweep, JournalBytesIdenticalToSerial) {
  SearchEngine Engine(toy100(), gtx());
  std::string SerialPath = tmpPath("bytes_j1");
  std::string ParallelPath = tmpPath("bytes_j8");
  SweepReport Serial = runToySweep(Engine, SerialPath, 1);
  SweepReport Parallel = runToySweep(Engine, ParallelPath, 8);

  std::string SerialBytes = slurp(SerialPath);
  ASSERT_FALSE(SerialBytes.empty());
  EXPECT_EQ(SerialBytes, slurp(ParallelPath));
  expectEqualOutcomes(Parallel.Outcome, Serial.Outcome);
}

TEST(ParallelSweep, FaultInjectionPreservesByteIdentity) {
  // Injected in-process crash/hang actions and probabilistic simulate
  // faults must quarantine the same configs in the same (journal) order
  // at any job count.
  FaultPlan Plan;
  Plan.Actions.push_back({7, FaultAction::Crash});
  Plan.Actions.push_back({13, FaultAction::Hang});
  Plan.Rate[size_t(Stage::Simulate)] = 0.1;
  Plan.Seed = 42;
  SearchEngine Engine(toy100(), gtx(), {}, {}, Plan);

  std::string SerialPath = tmpPath("fault_j1");
  std::string ParallelPath = tmpPath("fault_j8");
  SweepReport Serial =
      runToySweep(Engine, SerialPath, 1, "crash@7,hang@13,sim=0.1");
  SweepReport Parallel =
      runToySweep(Engine, ParallelPath, 8, "crash@7,hang@13,sim=0.1");

  EXPECT_FALSE(Serial.Outcome.Quarantined.empty());
  EXPECT_EQ(slurp(SerialPath), slurp(ParallelPath));
  expectEqualOutcomes(Parallel.Outcome, Serial.Outcome);
  EXPECT_EQ(Parallel.Outcome.Evals[7].Failure.Code,
            ErrorCode::WorkerCrashed);
  EXPECT_EQ(Parallel.Outcome.Evals[13].Failure.Code,
            ErrorCode::WorkerTimeout);
}

TEST(ParallelSweep, InterruptThenResumeReachesSerialBytes) {
  // A graceful interrupt (as SIGTERM would deliver) lands after the 7th
  // committed record of a parallel sweep; resuming — still parallel —
  // must finish with journal bytes identical to an uninterrupted serial
  // sweep's.
  SearchEngine Engine(toy100(), gtx());
  std::string WantPath = tmpPath("intr_want");
  SweepReport Want = runToySweep(Engine, WantPath, 1);

  std::string Path = tmpPath("intr_got");
  clearSweepInterrupt();
  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Fingerprint = toyFp(toy100());
  Opts.Jobs = 8;
  Opts.InterruptAfterRecords = 7;
  SweepReport Cut = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Cut.Status, SweepStatus::Interrupted);
  clearSweepInterrupt();

  // The committed prefix is a prefix of the serial journal, byte for byte.
  std::string Prefix = slurp(Path);
  ASSERT_FALSE(Prefix.empty());
  EXPECT_EQ(slurp(WantPath).compare(0, Prefix.size(), Prefix), 0);

  Opts.InterruptAfterRecords = 0;
  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, 7u);
  EXPECT_EQ(slurp(Path), slurp(WantPath));
  expectEqualOutcomes(Res.Outcome, Want.Outcome);
}

TEST(ParallelSweep, InterruptUnderInjectionStaysResumable) {
  FaultPlan Plan;
  Plan.Actions.push_back({3, FaultAction::Crash});
  SearchEngine Engine(toy100(), gtx(), {}, {}, Plan);
  std::string WantPath = tmpPath("intrinj_want");
  SweepReport Want = runToySweep(Engine, WantPath, 1, "crash@3");

  std::string Path = tmpPath("intrinj_got");
  clearSweepInterrupt();
  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Fingerprint = toyFp(toy100(), "crash@3");
  Opts.Jobs = 4;
  Opts.InterruptAfterRecords = 10; // past the quarantined config
  SweepReport Cut = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Cut.Status, SweepStatus::Interrupted);
  clearSweepInterrupt();

  Opts.InterruptAfterRecords = 0;
  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, 10u);
  EXPECT_EQ(slurp(Path), slurp(WantPath));
  expectEqualOutcomes(Res.Outcome, Want.Outcome);
}

TEST(ParallelSweep, JobsWarnedAndIgnoredUnderIsolation) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  clearSweepInterrupt();
  SearchEngine Engine(toy100(), gtx());
  SweepOptions Opts;
  Opts.Isolate = true;
  Opts.Jobs = 4;
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  bool Warned = false;
  for (const std::string &W : Rep.Warnings)
    Warned |= W.find("--jobs is ignored with --isolate") != std::string::npos;
  EXPECT_TRUE(Warned);
  expectEqualOutcomes(Rep.Outcome, Engine.exhaustive());
}

//===--- Shard clamping ---------------------------------------------------------//

TEST(ShardClamping, OversubscribedShardIsCappedWithWarning) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  clearSweepInterrupt();
  SearchEngine Engine(toy100(), gtx());
  SweepOptions Opts;
  Opts.Isolate = true;
  Opts.ShardSize = 1000; // far more than the 100 candidates
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  bool Warned = false;
  for (const std::string &W : Rep.Warnings)
    Warned |= W.find("capping the shard size") != std::string::npos;
  EXPECT_TRUE(Warned);
  expectEqualOutcomes(Rep.Outcome, Engine.exhaustive());
}

TEST(ShardClamping, ZeroShardBecomesOneWithWarning) {
  if (!subprocessSupported())
    GTEST_SKIP() << "no fork on this platform";
  clearSweepInterrupt();
  ToyApp Tiny(2); // 10 configs: one-config shards stay fast
  SearchEngine Engine(Tiny, gtx());
  SweepOptions Opts;
  Opts.Isolate = true;
  Opts.ShardSize = 0;
  SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Rep.Status, SweepStatus::Completed);
  bool Warned = false;
  for (const std::string &W : Rep.Warnings)
    Warned |= W.find("--shard 0 is invalid") != std::string::npos;
  EXPECT_TRUE(Warned);
  expectEqualOutcomes(Rep.Outcome, Engine.exhaustive());
}

//===--- Bandwidth fast path ----------------------------------------------------//

TEST(BandwidthFastPath, EstimateAgreesLooselyWithSimulation) {
  // The analytic bound is a screen, not a simulator: demand only that it
  // lands within a small constant factor of the simulated cycle count
  // for a bandwidth-bound configuration, and that it flags itself.
  MatMulApp App(MatMulProblem::emulation());
  Evaluator E(App, gtx());
  std::vector<ConfigEval> Evals = E.evaluateMetrics();
  size_t Checked = 0;
  for (const ConfigEval &CE : Evals) {
    if (!CE.usable() || !CE.Metrics.bandwidthBound())
      continue;
    Kernel K = App.buildKernel(CE.Point);
    LaunchConfig LC = App.launch(CE.Point);
    Expected<SimResult> Fast = estimateBandwidthBoundKernel(K, LC, gtx());
    ASSERT_TRUE(Fast.ok()) << Fast.diag().Message;
    EXPECT_TRUE(Fast->BandwidthFastPath);
    Expected<SimResult> Sim = simulateKernel(K, LC, gtx());
    ASSERT_TRUE(Sim.ok()) << Sim.diag().Message;
    EXPECT_FALSE(Sim->BandwidthFastPath);
    ASSERT_GT(Sim->Cycles, 0u);
    double Ratio = double(Fast->Cycles) / double(Sim->Cycles);
    EXPECT_GT(Ratio, 0.25) << "config #" << CE.FlatIndex;
    EXPECT_LT(Ratio, 4.0) << "config #" << CE.FlatIndex;
    if (++Checked == 8)
      break;
  }
  ASSERT_GT(Checked, 0u) << "no bandwidth-bound configs in the space";
}

TEST(BandwidthFastPath, MeasureUsesItOnlyWhenEnabledAndBound) {
  MatMulApp App(MatMulProblem::emulation());
  SimOptions SOpts;
  SOpts.BandwidthFastPath = true;
  Evaluator Fast(App, gtx(), {}, SOpts);
  Evaluator Slow(App, gtx());
  std::vector<ConfigEval> Evals = Fast.evaluateMetrics();

  size_t Bound = 0, Unbound = 0;
  for (ConfigEval &CE : Evals) {
    if (!CE.usable() || (Bound >= 4 && Unbound >= 4))
      continue;
    ConfigEval Plain = CE;
    ASSERT_TRUE(Fast.measure(CE)) << CE.Failure.Message;
    ASSERT_TRUE(Slow.measure(Plain)) << Plain.Failure.Message;
    if (CE.Metrics.bandwidthBound()) {
      ++Bound;
      EXPECT_TRUE(CE.Sim.BandwidthFastPath) << CE.FlatIndex;
    } else {
      ++Unbound;
      EXPECT_FALSE(CE.Sim.BandwidthFastPath) << CE.FlatIndex;
      // Off the fast path the two evaluators must agree exactly.
      EXPECT_EQ(CE.Sim.Cycles, Plain.Sim.Cycles) << CE.FlatIndex;
    }
    EXPECT_FALSE(Plain.Sim.BandwidthFastPath);
  }
  EXPECT_GT(Bound, 0u);
  EXPECT_GT(Unbound, 0u);
}

TEST(BandwidthFastPath, ParallelSweepWithFastPathStaysDeterministic) {
  MatMulApp App(MatMulProblem::emulation());
  SimOptions SOpts;
  SOpts.BandwidthFastPath = true;
  SearchEngine Engine(App, gtx(), {}, SOpts);

  auto Run = [&](const std::string &Path, unsigned Jobs) {
    clearSweepInterrupt();
    SweepOptions Opts;
    Opts.JournalPath = Path;
    Opts.Fingerprint.App = std::string(App.name());
    Opts.Fingerprint.Machine = gtx().Name;
    Opts.Fingerprint.Strategy = "exhaustive";
    Opts.Fingerprint.RawSize = App.space().rawSize();
    Opts.Fingerprint.Extra = "|fastbw";
    Opts.Jobs = Jobs;
    SweepReport Rep = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
    EXPECT_EQ(Rep.Status, SweepStatus::Completed);
    return Rep;
  };
  std::string A = tmpPath("fastbw_j1"), B = tmpPath("fastbw_j8");
  SweepReport Serial = Run(A, 1);
  SweepReport Parallel = Run(B, 8);
  EXPECT_EQ(slurp(A), slurp(B));
  expectEqualOutcomes(Parallel.Outcome, Serial.Outcome);

  // The fast-path flag round-trips through the journal: a resume restores
  // it rather than re-simulating.
  bool SawFlag = false;
  for (size_t I : Serial.Outcome.Candidates)
    SawFlag |= Serial.Outcome.Evals[I].Sim.BandwidthFastPath;
  EXPECT_TRUE(SawFlag);
  clearSweepInterrupt();
  SweepOptions Opts;
  Opts.JournalPath = A;
  Opts.Fingerprint.App = std::string(App.name());
  Opts.Fingerprint.Machine = gtx().Name;
  Opts.Fingerprint.Strategy = "exhaustive";
  Opts.Fingerprint.RawSize = App.space().rawSize();
  Opts.Fingerprint.Extra = "|fastbw";
  Opts.Resume = true;
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_EQ(Res.ResumedSkipped, Serial.Outcome.Candidates.size());
  for (size_t I : Serial.Outcome.Candidates)
    EXPECT_EQ(Res.Outcome.Evals[I].Sim.BandwidthFastPath,
              Serial.Outcome.Evals[I].Sim.BandwidthFastPath);
}

} // namespace
