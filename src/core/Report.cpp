//===- core/Report.cpp ----------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "support/Format.h"
#include "support/Csv.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace g80;

namespace {

Diagnostic reportError(std::string Msg) {
  return makeDiag(ErrorCode::JournalError, Stage::Parse, std::move(Msg));
}

/// %.17g so JSON output round-trips doubles exactly, like the journal.
std::string fmtExact(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

std::string pointText(const std::vector<int> &Point) {
  std::string Out;
  for (size_t I = 0; I != Point.size(); ++I)
    Out += (I ? "," : "") + std::to_string(Point[I]);
  return Out;
}

std::string pointJson(const std::vector<int> &Point) {
  std::string Out = "[";
  for (size_t I = 0; I != Point.size(); ++I)
    Out += (I ? "," : "") + std::to_string(Point[I]);
  return Out + "]";
}

} // namespace

//===--- Loading --------------------------------------------------------------//

Expected<LoadedRecords> g80::loadEvalRecords(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return reportError("cannot open '" + Path + "'");
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());

  LoadedRecords Out;
  if (Text.compare(0, 15, "{\"g80journal\":1") == 0) {
    Expected<JournalContents> C = readJournal(Path);
    if (!C)
      return C.takeDiag();
    Out.Header = C->Header;
    Out.Records.reserve(C->Records.size());
    for (const std::string &Payload : C->Records) {
      Expected<EvalRecord> R = EvalRecord::fromJson(Payload);
      if (!R)
        return R.takeDiag();
      Out.Records.push_back(R.takeValue());
    }
    return Out;
  }

  std::vector<std::vector<std::string>> Rows = parseCsv(Text);
  if (Rows.empty())
    return reportError("'" + Path +
                       "' is neither a sweep journal nor an eval CSV");
  const std::vector<std::string> &Header = Rows.front();
  if (std::find(Header.begin(), Header.end(), "index") == Header.end() ||
      std::find(Header.begin(), Header.end(), "cycles") == Header.end())
    return reportError("'" + Path +
                       "' is neither a sweep journal nor an eval CSV");
  Out.Records.reserve(Rows.size() - 1);
  for (size_t I = 1; I < Rows.size(); ++I) {
    Expected<EvalRecord> R = EvalRecord::fromCsvRow(Header, Rows[I]);
    if (!R)
      return reportError("row " + std::to_string(I + 1) + " of '" + Path +
                         "': " + R.diag().Message);
    Out.Records.push_back(R.takeValue());
  }
  return Out;
}

//===--- Trace aggregation ----------------------------------------------------//

Expected<TraceSummary> g80::readTraceSummary(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return reportError("cannot open trace file '" + Path + "'");

  TraceSummary Out;
  std::map<std::string, TraceStageStat> Stages;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string Type;
    if (Line.front() != '{' || Line.back() != '}' ||
        !jsonStringField(Line, "type", Type))
      return reportError("trace line " + std::to_string(LineNo) +
                         " is not a JSON object with a \"type\" field");
    if (Type == "span") {
      std::string Name;
      uint64_t DurUs = 0;
      if (!jsonStringField(Line, "name", Name) ||
          !jsonUintField(Line, "dur_us", DurUs))
        return reportError("trace span line " + std::to_string(LineNo) +
                           " is missing name/dur_us");
      TraceStageStat &S = Stages[Name];
      S.Name = Name;
      ++S.Count;
      S.TotalUs += DurUs;
      S.MinUs = std::min(S.MinUs, DurUs);
      S.MaxUs = std::max(S.MaxUs, DurUs);
      ++Out.SpanLines;
    } else if (Type == "counter") {
      std::string Name;
      uint64_t Value = 0;
      if (!jsonStringField(Line, "name", Name) ||
          !jsonUintField(Line, "value", Value))
        return reportError("trace counter line " + std::to_string(LineNo) +
                           " is missing name/value");
      Out.Counters[Name] += Value;
    }
    // "meta" and unknown types: skip.
  }

  for (auto &[Name, S] : Stages)
    Out.Stages.push_back(S);
  std::stable_sort(Out.Stages.begin(), Out.Stages.end(),
                   [](const TraceStageStat &A, const TraceStageStat &B) {
                     return A.TotalUs > B.TotalUs;
                   });
  return Out;
}

//===--- Aggregation ----------------------------------------------------------//

SweepSummary SweepSummary::fromRecords(const LoadedRecords &Loaded,
                                       const ReportOptions &Opts) {
  SweepSummary S;
  S.Source = Loaded.Header;

  uint64_t BsmSum = 0;
  size_t BsmCount = 0;
  for (const EvalRecord &R : Loaded.Records) {
    ++S.Records;
    if (R.Expressible)
      ++S.Expressible;
    if (R.Valid)
      ++S.Valid;
    if (R.failed()) {
      ++S.Quarantined;
      ++S.QuarantinedPerStage[size_t(R.At)];
      ++S.QuarantineCodes[errorCodeName(R.Code)];
      continue;
    }
    if (!R.Measured)
      continue;
    ++S.Measured;
    S.TotalMeasuredSeconds += R.TimeSeconds;
    if (R.FastBw) {
      ++S.FastBw;
    } else {
      S.Cycles += R.Cycles;
      S.IssueStallCycles += R.IssueStallCycles;
      S.MemQueueWaitCycles += R.MemQueueWaitCycles;
    }
    if (R.BlocksPerSM > 0) {
      BsmSum += R.BlocksPerSM;
      ++BsmCount;
    }
    if (!S.HasBest || R.TimeSeconds < S.Best.TimeSeconds ||
        (R.TimeSeconds == S.Best.TimeSeconds && R.Index < S.Best.Index)) {
      S.HasBest = true;
      S.Best = R;
    }
  }
  S.MeanBlocksPerSm = BsmCount == 0 ? 0 : double(BsmSum) / double(BsmCount);

  std::vector<EvalRecord> Measured;
  for (const EvalRecord &R : Loaded.Records)
    if (R.Measured && !R.failed())
      Measured.push_back(R);
  std::sort(Measured.begin(), Measured.end(),
            [](const EvalRecord &A, const EvalRecord &B) {
              if (A.TimeSeconds != B.TimeSeconds)
                return A.TimeSeconds > B.TimeSeconds;
              return A.Index < B.Index;
            });
  if (Measured.size() > Opts.TopN)
    Measured.resize(Opts.TopN);
  S.Slowest = std::move(Measured);
  return S;
}

//===--- Rendering ------------------------------------------------------------//

void g80::renderReportText(const SweepSummary &S, const TraceSummary *Trace,
                           std::ostream &OS) {
  OS << "sweep report";
  if (S.Source)
    OS << " — " << S.Source->App << " on " << S.Source->Machine
       << ", strategy " << S.Source->Strategy;
  OS << "\n\n";

  OS << "  records              : " << S.Records << "\n";
  if (S.Source && S.Source->RawSize != 0)
    OS << "  space (raw)          : " << S.Source->RawSize << "\n";
  OS << "  expressible          : " << S.Expressible << "\n"
     << "  valid                : " << S.Valid << "\n"
     << "  measured             : " << S.Measured << "\n"
     << "  quarantined          : " << S.Quarantined << "\n"
     << "  space reduction      : " << fmtPercent(S.spaceReduction()) << "\n";
  if (S.Source && S.Source->RawSize != 0)
    OS << "  reduction vs raw     : " << fmtPercent(S.rawSpaceReduction())
       << "\n";
  OS << "  total measured time  : "
     << fmtDouble(S.TotalMeasuredSeconds * 1e3, 2) << " ms\n";
  if (S.HasBest)
    OS << "  best configuration   : #" << S.Best.Index << " ["
       << pointText(S.Best.Point) << "]\n"
       << "  best time            : " << fmtDouble(S.Best.TimeSeconds * 1e3, 3)
       << " ms\n";

  OS << "\nattribution (cycle-simulated records)\n"
     << "  cycles               : " << S.Cycles << "\n"
     << "  issue stalls         : " << S.IssueStallCycles;
  if (S.Cycles != 0)
    OS << " (" << fmtPercent(double(S.IssueStallCycles) / double(S.Cycles))
       << " of cycles; issue efficiency " << fmtPercent(S.issueEfficiency())
       << ")";
  // Queue waits sum over every memory request, so the ratio to simulated
  // cycles is a pressure figure (can exceed 1), not a share.
  OS << "\n  memory queue waits   : " << S.MemQueueWaitCycles;
  if (S.Cycles != 0)
    OS << " (" << fmtDouble(double(S.MemQueueWaitCycles) / double(S.Cycles), 1)
       << " wait-cycles per cycle)";
  OS << "\n  fast-bw records      : " << S.FastBw << "\n"
     << "  mean blocks/SM       : " << fmtDouble(S.MeanBlocksPerSm, 2) << "\n";

  if (S.Quarantined != 0) {
    OS << "\nquarantine breakdown\n";
    for (size_t St = 0; St != NumStages; ++St)
      if (S.QuarantinedPerStage[St] != 0)
        OS << "  " << stageName(Stage(St)) << " : "
           << S.QuarantinedPerStage[St] << "\n";
    for (const auto &[Code, Count] : S.QuarantineCodes)
      OS << "  [" << Code << "] : " << Count << "\n";
  }

  if (!S.Slowest.empty()) {
    OS << "\nslowest configurations\n";
    TextTable T;
    T.setHeader({"config", "point", "time", "cycles", "issue eff", "path"});
    for (const EvalRecord &R : S.Slowest)
      T.addRow({"#" + std::to_string(R.Index), pointText(R.Point),
                fmtDouble(R.TimeSeconds * 1e3, 3) + " ms",
                std::to_string(R.Cycles), fmtPercent(R.issueEfficiency()),
                R.FastBw ? "fast-bw" : "sim"});
    T.print(OS);
  }

  if (Trace) {
    OS << "\nstage wall-time histogram (trace)\n";
    uint64_t MaxTotal = 0;
    for (const TraceStageStat &St : Trace->Stages)
      MaxTotal = std::max(MaxTotal, St.TotalUs);
    TextTable T;
    T.setHeader({"stage", "count", "total", "mean", "share"});
    for (const TraceStageStat &St : Trace->Stages) {
      size_t Bar =
          MaxTotal == 0 ? 0 : size_t(30.0 * double(St.TotalUs) / double(MaxTotal));
      T.addRow({St.Name, std::to_string(St.Count),
                fmtDouble(double(St.TotalUs) / 1e3, 1) + " ms",
                fmtDouble(St.meanUs(), 1) + " us", std::string(Bar, '#')});
    }
    T.print(OS);
    if (!Trace->Counters.empty()) {
      OS << "\ntrace counters\n";
      for (const auto &[Name, Value] : Trace->Counters)
        OS << "  " << Name << " : " << Value << "\n";
    }
  }
}

void g80::renderReportJson(const SweepSummary &S, const TraceSummary *Trace,
                           std::ostream &OS) {
  OS << "{\n  \"report\": \"sweep\",\n";
  if (S.Source)
    OS << "  \"source\": {\"app\": \"" << jsonEscape(S.Source->App)
       << "\", \"machine\": \"" << jsonEscape(S.Source->Machine)
       << "\", \"strategy\": \"" << jsonEscape(S.Source->Strategy)
       << "\", \"raw_size\": " << S.Source->RawSize << "},\n";
  OS << "  \"records\": " << S.Records
     << ",\n  \"expressible\": " << S.Expressible
     << ",\n  \"valid\": " << S.Valid << ",\n  \"measured\": " << S.Measured
     << ",\n  \"quarantined\": " << S.Quarantined
     << ",\n  \"fast_bw\": " << S.FastBw
     << ",\n  \"space_reduction\": " << fmtExact(S.spaceReduction())
     << ",\n  \"space_reduction_raw\": " << fmtExact(S.rawSpaceReduction())
     << ",\n  \"total_measured_seconds\": "
     << fmtExact(S.TotalMeasuredSeconds);
  if (S.HasBest)
    OS << ",\n  \"best\": {\"index\": " << S.Best.Index
       << ", \"point\": " << pointJson(S.Best.Point)
       << ", \"time_seconds\": " << fmtExact(S.Best.TimeSeconds) << "}";
  OS << ",\n  \"attribution\": {\"cycles\": " << S.Cycles
     << ", \"issue_stall_cycles\": " << S.IssueStallCycles
     << ", \"mem_queue_wait_cycles\": " << S.MemQueueWaitCycles
     << ", \"issue_efficiency\": " << fmtExact(S.issueEfficiency())
     << ", \"mean_blocks_per_sm\": " << fmtExact(S.MeanBlocksPerSm) << "}";

  OS << ",\n  \"quarantine\": {\"stages\": {";
  bool First = true;
  for (size_t St = 0; St != NumStages; ++St) {
    if (S.QuarantinedPerStage[St] == 0)
      continue;
    OS << (First ? "" : ", ") << "\"" << stageName(Stage(St))
       << "\": " << S.QuarantinedPerStage[St];
    First = false;
  }
  OS << "}, \"codes\": {";
  First = true;
  for (const auto &[Code, Count] : S.QuarantineCodes) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(Code) << "\": " << Count;
    First = false;
  }
  OS << "}}";

  OS << ",\n  \"slowest\": [";
  for (size_t I = 0; I != S.Slowest.size(); ++I) {
    const EvalRecord &R = S.Slowest[I];
    OS << (I ? ", " : "") << "{\"index\": " << R.Index
       << ", \"point\": " << pointJson(R.Point)
       << ", \"time_seconds\": " << fmtExact(R.TimeSeconds)
       << ", \"cycles\": " << R.Cycles
       << ", \"issue_efficiency\": " << fmtExact(R.issueEfficiency())
       << ", \"fast_bw\": " << (R.FastBw ? "true" : "false") << "}";
  }
  OS << "]";

  if (Trace) {
    OS << ",\n  \"trace\": {\"span_lines\": " << Trace->SpanLines
       << ", \"stages\": [";
    for (size_t I = 0; I != Trace->Stages.size(); ++I) {
      const TraceStageStat &St = Trace->Stages[I];
      OS << (I ? ", " : "") << "{\"name\": \"" << jsonEscape(St.Name)
         << "\", \"count\": " << St.Count << ", \"total_us\": " << St.TotalUs
         << ", \"mean_us\": " << fmtExact(St.meanUs())
         << ", \"min_us\": " << (St.Count ? St.MinUs : 0)
         << ", \"max_us\": " << St.MaxUs << "}";
    }
    OS << "], \"counters\": {";
    bool FirstC = true;
    for (const auto &[Name, Value] : Trace->Counters) {
      OS << (FirstC ? "" : ", ") << "\"" << jsonEscape(Name)
         << "\": " << Value;
      FirstC = false;
    }
    OS << "}}";
  }
  OS << "\n}\n";
}
