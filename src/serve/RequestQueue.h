//===- serve/RequestQueue.h - Bounded admission queue ---------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission queue: a small bounded MPMC queue between the
/// session threads (producers) and the executor threads (consumers).
/// The bound is the backpressure mechanism — tryPush fails when the
/// queue is full, and the session answers with an "overloaded" frame
/// instead of letting a traffic burst grow an unbounded backlog (each
/// queued request pins a spool ticket and a client's patience).
///
/// push() bypasses the bound: restart recovery re-admits journaled jobs
/// that were *already* accepted before the crash, and re-shedding them
/// would break the completion guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SERVE_REQUESTQUEUE_H
#define G80TUNE_SERVE_REQUESTQUEUE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace g80 {

template <typename T> class RequestQueue {
public:
  explicit RequestQueue(size_t Limit) : Limit(Limit) {}

  /// Admits \p Item unless the queue is at its bound or closed.  The
  /// false return is the overload-shed signal.
  bool tryPush(T Item) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Closed || Items.size() >= Limit)
        return false;
      Items.push_back(std::move(Item));
    }
    Cv.notify_one();
    return true;
  }

  /// Unbounded admit for restart recovery (see file comment).  False only
  /// when closed.
  bool push(T Item) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Closed)
        return false;
      Items.push_back(std::move(Item));
    }
    Cv.notify_one();
    return true;
  }

  /// Waits up to \p TimeoutSeconds for an item.  Empty optional on
  /// timeout, or immediately once closed and drained.
  std::optional<T> pop(double TimeoutSeconds) {
    std::unique_lock<std::mutex> L(M);
    Cv.wait_for(L, std::chrono::duration<double>(TimeoutSeconds),
                [this] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    return Item;
  }

  /// Stops all admission (tryPush and push fail) and wakes waiting
  /// consumers; already-queued items still drain through pop.
  void close() {
    {
      std::lock_guard<std::mutex> L(M);
      Closed = true;
    }
    Cv.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> L(M);
    return Items.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> L(M);
    return Closed;
  }

  size_t limit() const { return Limit; }

private:
  const size_t Limit;
  mutable std::mutex M;
  std::condition_variable Cv;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace g80

#endif // G80TUNE_SERVE_REQUESTQUEUE_H
