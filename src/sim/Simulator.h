//===- sim/Simulator.h - G80 SM timing simulator -----------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wall-clock substitute: a timing model of a GeForce-8800 streaming
/// multiprocessor executing a kernel launch.  Where the paper measures
/// configurations on silicon, we measure them here; the tuner treats this
/// as ground truth exactly as the paper treats run time.
///
/// Modeled first-order mechanisms (the ones the paper's §2-§3 analysis
/// turns on):
///  - single issue port per SM, one warp-instruction per 4 cycles (SFU
///    ops occupy it for WarpSize/SFUs cycles);
///  - zero-overhead warp interleaving: any ready warp from any resident
///    block may issue ("the SM stalls only if there are no warps with
///    ready operands available", §2.1);
///  - register scoreboarding with non-blocking global loads: a load
///    stalls the warp only when a later instruction consumes its result;
///  - off-chip bandwidth as a service queue (the chip's 86.4 GB/s divided
///    evenly among SMs), with per-access effective transaction sizes so
///    uncoalesced accesses consume up to 8x their useful traffic;
///  - intra-block barrier synchronization;
///  - block residency from the occupancy calculation, with finished
///    blocks replaced by queued ones until the SM's share of the grid is
///    done.
///
/// One representative SM is simulated; SMs process equal shares of the
/// grid independently (true for the paper's regular kernels), so kernel
/// time equals the representative SM's busy time.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SIM_SIMULATOR_H
#define G80TUNE_SIM_SIMULATOR_H

#include "arch/LaunchConfig.h"
#include "arch/MachineModel.h"
#include "arch/Occupancy.h"
#include "support/Status.h"

#include <cstdint>

namespace g80 {

class Kernel;

/// Simulation controls, including the watchdog budgets.  Exhausting a
/// budget returns a structured SimulatorTimeout diagnostic — generated
/// kernels come from mechanical sweeps, so a runaway variant must not take
/// the whole search down with it.
struct SimOptions {
  /// Scheduler-core selection.  Both engines execute the same trace with
  /// the same round-robin issue order and produce bit-identical SimResults
  /// (asserted by tests/SimEngineTest.cpp and bench/sweep_perf); they
  /// differ only in how the next issueable warp is found.
  enum class Engine : uint8_t {
    /// Event-driven core (default): dense SoA warp state, a ready bitmask
    /// scanned with ctz, and a wake calendar over the cached StallUntil
    /// values so an all-stalled SM jumps the clock straight to the next
    /// wake cycle.  The fast path.
    Event,
    /// The original round-robin scan over every resident warp per issue
    /// slot.  Kept as the debugging/differential reference (`tune search
    /// --sim-engine scan`).
    Scan,
  };

  Engine EngineSel = Engine::Event;

  /// Watchdog cap on issued warp instructions.
  uint64_t MaxIssues = 1ull << 33;
  /// Watchdog cap on simulated cycles.  The default is far above any
  /// legitimate kernel in the paper's spaces (~2^31 cycles for the largest
  /// app) but finite, so a pathological trace terminates.
  uint64_t MaxCycles = 1ull << 40;
  /// Opt-in short circuit: when the §5.3 screen already classifies a
  /// configuration as bandwidth-bound, replace cycle simulation with the
  /// analytic estimateBandwidthBoundKernel() bound.  Off by default —
  /// results carry an estimate, not ground truth, and the journal
  /// fingerprint must change with this flag (tools/tune.cpp appends it to
  /// Extra).  The decision itself lives in core/Evaluation.cpp, which owns
  /// the metrics.
  bool BandwidthFastPath = false;
};

/// Timing result and scheduler statistics.
struct SimResult {
  uint64_t Cycles = 0;
  double Seconds = 0;

  Occupancy Occ;

  uint64_t IssuedWarpInstrs = 0;   ///< Including synthetic loop control.
  uint64_t SyntheticCtlInstrs = 0; ///< The loop-control subset.
  /// Cycles the issue port sat idle because no resident warp had ready
  /// operands — the quantity the Utilization metric predicts.
  uint64_t IssueStallCycles = 0;
  /// Cycles of memory-queue serialization beyond raw latency (bandwidth
  /// pressure).
  uint64_t MemQueueWaitCycles = 0;
  uint64_t BlocksRun = 0; ///< Blocks executed on the simulated SM.

  /// True when Cycles/Seconds came from the analytic bandwidth bound
  /// (estimateBandwidthBoundKernel) instead of cycle simulation; the
  /// scheduler statistics above are zero in that case.
  bool BandwidthFastPath = false;

  /// Fraction of cycles the issue port was busy.
  double issueUtilization() const {
    return Cycles == 0 ? 0 : 1.0 - double(IssueStallCycles) / double(Cycles);
  }
};

/// Simulates \p K launched as \p Launch on \p Machine and returns timing.
/// Resource usage (hence occupancy) is taken from the same estimator the
/// metrics use, so metrics and ground truth agree about B_SM.
///
/// Failure diagnostics (all Stage Simulate unless noted):
///  - OccupancyInvalid (Stage Occupancy): the kernel cannot launch — the
///    paper's "invalid executable" outcome;
///  - SimulatorTimeout: a watchdog budget (MaxCycles/MaxIssues) ran out;
///  - SimulatorDeadlock: no resident warp can ever become ready again
///    while blocks are unfinished — e.g. a barrier in divergent control
///    flow, which hangs the block on real hardware.
Expected<SimResult> simulateKernel(const Kernel &K,
                                   const LaunchConfig &Launch,
                                   const MachineModel &Machine,
                                   const SimOptions &Opts = {});

/// Analytic lower-bound timing for a bandwidth-bound kernel: when the §5.3
/// screen says demanded DRAM traffic exceeds the machine's service rate,
/// run time is the bandwidth service time (plus issue-port time if that is
/// somehow larger, plus one latency to fill the pipeline) and cycle
/// simulation adds no information.  Returns a SimResult with
/// BandwidthFastPath set and scheduler statistics zeroed.  Shares the
/// occupancy check (and its OccupancyInvalid diagnostic) with
/// simulateKernel so the two entry points agree about launchability.
Expected<SimResult> estimateBandwidthBoundKernel(const Kernel &K,
                                                 const LaunchConfig &Launch,
                                                 const MachineModel &Machine,
                                                 const SimOptions &Opts = {});

} // namespace g80

#endif // G80TUNE_SIM_SIMULATOR_H
