//===- analysis/Lint.h - Kernel lint passes --------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint driver: runs every static checker over one generated kernel
/// under one launch configuration and returns the combined, deterministic
/// list of findings.
///
/// Checkers (all proven-only — Wild symbolic values produce silence, never
/// a report):
///  - shared-memory race detector over barrier intervals (divergence-aware
///    via the if-region structure, loop-carried via iteration symbols),
///  - bank-conflict analyzer per half-warp,
///  - coalescing cross-check against Instruction::EffBytesPerThread,
///  - register-pressure cross-validation against ptx/ResourceEstimator,
///  - dead code, unreachable code and unused-register hygiene.
///
/// Error findings quarantine a configuration under Stage::Lint in the
/// sweep pipeline; warnings are informational only.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_ANALYSIS_LINT_H
#define G80TUNE_ANALYSIS_LINT_H

#include "analysis/Finding.h"
#include "arch/LaunchConfig.h"
#include "ptx/Kernel.h"
#include "support/Status.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace g80 {

/// Switches for the lint stage of the evaluation pipeline.
struct LintOptions {
  bool Enabled = false;
};

/// All findings for one (kernel, launch) pair, sorted deterministically:
/// errors before warnings, then by instruction id, category and message.
struct LintResult {
  std::vector<Finding> Findings;

  unsigned errorCount() const;
  unsigned warningCount() const;
};

/// Runs every lint pass over \p K under \p Launch.
LintResult runLint(const Kernel &K, const LaunchConfig &Launch);

/// Maps a failing LintResult to the pipeline error code: LintRace for
/// races and divergent barriers, LintAnnotation for contradicted metadata
/// (coalescing bytes, Uniform if-regions), LintFailed otherwise.
/// Pre: R.errorCount() > 0.
ErrorCode lintErrorCode(const LintResult &R);

/// One-line summary of the error findings (first few messages plus a
/// count), suitable for a Diagnostic message.
std::string lintErrorSummary(const LintResult &R);

/// Human-readable rendering, one finding per line.
void renderLintText(const LintResult &R, std::ostream &OS);

/// Single JSON object with a findings array and severity totals.
void renderLintJson(const LintResult &R, std::ostream &OS);

} // namespace g80

#endif // G80TUNE_ANALYSIS_LINT_H
