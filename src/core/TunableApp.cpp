//===- core/TunableApp.cpp ------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/TunableApp.h"

using namespace g80;

TunableApp::~TunableApp() = default;

bool TunableApp::isExpressible(const ConfigPoint &) const { return true; }

uint64_t TunableApp::invocations(const ConfigPoint &) const { return 1; }
