//===- tests/SmokeTest.cpp - End-to-end pipeline smoke checks ---------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "kernels/Cp.h"
#include "kernels/MatMul.h"
#include "kernels/MriFhd.h"
#include "kernels/Sad.h"
#include "metrics/Metrics.h"
#include "ptx/Printer.h"
#include "analysis/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace g80;

namespace {

void expectVerifies(const TunableApp &App, const ConfigPoint &P,
                    double Tol = 1e-3) {
  ASSERT_TRUE(App.isExpressible(P));
  Kernel K = App.buildKernel(P);
  std::vector<std::string> Errors = verifyKernel(K);
  for (const std::string &E : Errors)
    ADD_FAILURE() << K.name() << ": " << E;
  if (!Errors.empty())
    return;
  double Err = App.verifyConfig(P);
  EXPECT_LE(Err, Tol) << K.name();
}

TEST(Smoke, MatMulPaperExampleMetrics) {
  MatMulApp App(MatMulProblem::paper());
  ConfigPoint P = App.paperExampleConfig();
  Kernel K = App.buildKernel(P);
  MachineModel M = MachineModel::geForce8800Gtx();
  KernelMetrics KM = computeKernelMetrics(K, App.launch(P), M);

  std::fprintf(stderr,
               "paper example: Instr=%llu Regions=%llu regs=%u smem=%u "
               "B_SM=%u W_TB=%u Eff=%.3e Util=%.1f bwRatio=%.3f\n",
               (unsigned long long)KM.Profile.DynInstrs,
               (unsigned long long)KM.Profile.regions(),
               KM.Resources.RegsPerThread,
               KM.Resources.SharedMemPerBlockBytes, KM.Occ.BlocksPerSM,
               KM.Occ.WarpsPerBlock, KM.Efficiency, KM.Utilization,
               KM.BandwidthDemandRatio);

  EXPECT_TRUE(KM.Valid);
  EXPECT_EQ(KM.Occ.WarpsPerBlock, 8u);
  // Paper §4: Instr = 15150, Regions = 769, 13 regs, 2088B shared,
  // B_SM = 2, Utilization ~ 227, Efficiency ~ 3.93e-12.
  EXPECT_NEAR(double(KM.Profile.DynInstrs), 15150.0, 15150.0 * 0.02);
  EXPECT_EQ(KM.Profile.regions(), 769u);
  EXPECT_EQ(KM.Resources.RegsPerThread, 13u);
  EXPECT_EQ(KM.Resources.SharedMemPerBlockBytes, 2088u);
  EXPECT_EQ(KM.Occ.BlocksPerSM, 2u);
  EXPECT_NEAR(KM.Efficiency, 3.93e-12, 0.05e-12);
  EXPECT_NEAR(KM.Utilization, 227.0, 5.0);
}

TEST(Smoke, MatMulVerifiesSampleConfigs) {
  MatMulApp App(MatMulProblem::emulation());
  expectVerifies(App, {16, 1, 0, 0, 0});
  expectVerifies(App, {16, 4, 4, 1, 0});
  expectVerifies(App, {8, 2, 1, 0, 1});
  expectVerifies(App, {8, 4, 0, 1, 1});
}

TEST(Smoke, CpVerifiesSampleConfigs) {
  CpApp App(CpProblem::emulation());
  expectVerifies(App, {2, 1, 0});
  expectVerifies(App, {8, 4, 1});
  expectVerifies(App, {16, 16, 0});
}

TEST(Smoke, SadVerifiesSampleConfigs) {
  SadApp App(SadApp::emulationProblem());
  expectVerifies(App, {32, 1, 1, 1, 1});
  expectVerifies(App, {96, 4, 2, 2, 4});
  expectVerifies(App, {256, 4, 4, 4, 4});
  expectVerifies(App, {64, 16, 4, 1, 2});
}

TEST(Smoke, MriVerifiesSampleConfigs) {
  MriFhdApp App(MriProblem::emulation());
  expectVerifies(App, {32, 1, 1}, 2e-3);
  expectVerifies(App, {256, 8, 8}, 2e-3);
  expectVerifies(App, {512, 16, 4}, 2e-3);
}

TEST(Smoke, SimulatorRunsMatMul) {
  MatMulApp App(MatMulProblem{128});
  ConfigPoint P = App.paperExampleConfig();
  Kernel K = App.buildKernel(P);
  MachineModel M = MachineModel::geForce8800Gtx();
  Expected<SimResult> R = simulateKernel(K, App.launch(P), M);
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R->Cycles, 0u);
  std::fprintf(stderr, "matmul-128 sim: cycles=%llu time=%.3fms util=%.2f\n",
               (unsigned long long)R->Cycles, R->Seconds * 1e3,
               R->issueUtilization());
}

} // namespace
