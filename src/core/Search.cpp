//===- core/Search.cpp ----------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"

#include "core/Cluster.h"
#include "support/Random.h"

#include <algorithm>

using namespace g80;

SearchOutcome SearchOutcome::fromPlan(SweepPlan Plan) {
  SearchOutcome Out;
  Out.Strategy = std::move(Plan.Strategy);
  Out.Evals = std::move(Plan.Evals);
  Out.Candidates = std::move(Plan.Candidates);
  // Count usable entries and quarantine the ones that already failed
  // during metric evaluation (injected parse/verify/estimate faults or a
  // genuine verifier rejection).
  for (size_t I = 0; I != Out.Evals.size(); ++I) {
    const ConfigEval &E = Out.Evals[I];
    if (E.usable())
      ++Out.ValidCount;
    else if (E.failed())
      Out.noteQuarantined(I);
  }
  return Out;
}

void SearchOutcome::noteQuarantined(size_t Idx) {
  Quarantined.push_back(Idx);
  ++FailedPerStage[static_cast<size_t>(Evals[Idx].Failure.At)];
}

void SearchOutcome::noteMeasured(size_t Idx) {
  const ConfigEval &E = Evals[Idx];
  TotalMeasuredSeconds += E.TimeSeconds;
  if (E.TimeSeconds < BestTime) {
    BestTime = E.TimeSeconds;
    BestIndex = Idx;
  }
}

SearchOutcome SearchEngine::measureCandidates(SweepPlan Plan) const {
  SearchOutcome Out = SearchOutcome::fromPlan(std::move(Plan));
  for (size_t Idx : Out.Candidates) {
    ConfigEval &E = Out.Evals[Idx];
    if (!Eval.measure(E)) {
      // Quarantine and keep sweeping: one bad configuration must not take
      // the whole search down.
      Out.noteQuarantined(Idx);
      continue;
    }
    Out.noteMeasured(Idx);
  }
  return Out;
}

SweepPlan SweepPlan::slice(size_t Begin, size_t End) const {
  SweepPlan Out;
  Out.Strategy = Strategy;
  Out.Evals = Evals;
  Begin = std::min(Begin, Candidates.size());
  End = std::min(std::max(End, Begin), Candidates.size());
  Out.Candidates.assign(Candidates.begin() + ptrdiff_t(Begin),
                        Candidates.begin() + ptrdiff_t(End));
  return Out;
}

std::vector<ConfigEval> SearchEngine::planStatics(unsigned Jobs) const {
  if (Eval.app().space().rawSize() <= DenseEvalLimit)
    return Eval.evaluateMetrics(Jobs);
  // Large tier: a full raw scan is off the table, but the expressible
  // subset (a cheap pointAt+isExpressible screen) is still enumerable.
  return Eval.evaluateSubset(Eval.expressibleIndices(), Jobs);
}

SweepPlan SearchEngine::planExhaustive(unsigned Jobs) const {
  SweepPlan Plan;
  Plan.Strategy = "exhaustive";
  Plan.Evals = planStatics(Jobs);
  Plan.Candidates.reserve(Plan.Evals.size());
  for (size_t I = 0; I != Plan.Evals.size(); ++I)
    if (Plan.Evals[I].usable())
      Plan.Candidates.push_back(I);
  return Plan;
}

SweepPlan SearchEngine::planPareto(const ParetoOptions &Opts,
                                   unsigned Jobs) const {
  SweepPlan Plan;
  Plan.Strategy = "pareto";
  Plan.Evals = planStatics(Jobs);
  Plan.Candidates = paretoSubset(Plan.Evals, Opts);
  return Plan;
}

SweepPlan SearchEngine::planClustered(const ParetoOptions &Opts,
                                      double RelTol, unsigned Jobs) const {
  SweepPlan Plan;
  Plan.Strategy = "pareto+cluster";
  Plan.Evals = planStatics(Jobs);
  std::vector<size_t> Subset = paretoSubset(Plan.Evals, Opts);
  std::vector<std::vector<size_t>> Clusters =
      clusterByMetrics(Plan.Evals, Subset, RelTol);
  // One representative per cluster; the smallest index keeps the choice
  // deterministic ("randomly select a single configuration" in the paper
  // — any member works, that is the point of the cluster).
  Plan.Candidates.reserve(Clusters.size());
  for (const std::vector<size_t> &C : Clusters)
    Plan.Candidates.push_back(C.front());
  std::sort(Plan.Candidates.begin(), Plan.Candidates.end());
  return Plan;
}

SweepPlan SearchEngine::planRandom(size_t K, uint64_t Seed,
                                   unsigned Jobs) const {
  SweepPlan Plan;
  Plan.Strategy = "random";
  if (Eval.app().space().rawSize() > DenseEvalLimit) {
    // Sparse draw: sample flat indices from the expressible screen first,
    // then pay for statics only on the sample.  Resource-invalid draws
    // stay in Evals (journal fingerprinting needs the full sample) but do
    // not become candidates, so a sparse plan may measure fewer than K.
    std::vector<uint64_t> Expr = Eval.expressibleIndices();
    Rng R(Seed);
    size_t Draw = std::min<size_t>(K, Expr.size());
    for (size_t I = 0; I != Draw; ++I) {
      size_t J = I + size_t(R.nextBelow(Expr.size() - I));
      std::swap(Expr[I], Expr[J]);
    }
    std::vector<uint64_t> Picked(Expr.begin(),
                                 Expr.begin() + ptrdiff_t(Draw));
    std::sort(Picked.begin(), Picked.end());
    Plan.Evals = Eval.evaluateSubset(Picked, Jobs);
    for (size_t I = 0; I != Plan.Evals.size(); ++I)
      if (Plan.Evals[I].usable())
        Plan.Candidates.push_back(I);
    return Plan;
  }
  Plan.Evals = Eval.evaluateMetrics(Jobs);
  std::vector<size_t> Usable;
  Usable.reserve(Plan.Evals.size());
  for (size_t I = 0; I != Plan.Evals.size(); ++I)
    if (Plan.Evals[I].usable())
      Usable.push_back(I);

  // Partial Fisher-Yates draw of min(K, usable) distinct indices.
  Rng R(Seed);
  size_t Draw = std::min(K, Usable.size());
  for (size_t I = 0; I != Draw; ++I) {
    size_t J = I + size_t(R.nextBelow(Usable.size() - I));
    std::swap(Usable[I], Usable[J]);
  }
  Plan.Candidates.assign(Usable.begin(), Usable.begin() + Draw);
  std::sort(Plan.Candidates.begin(), Plan.Candidates.end());
  return Plan;
}

SearchOutcome SearchEngine::exhaustive() const {
  return measureCandidates(planExhaustive());
}

SearchOutcome SearchEngine::paretoPruned(const ParetoOptions &Opts) const {
  return measureCandidates(planPareto(Opts));
}

SearchOutcome SearchEngine::paretoClustered(const ParetoOptions &Opts,
                                            double RelTol) const {
  return measureCandidates(planClustered(Opts, RelTol));
}

SearchOutcome SearchEngine::greedyClimb(size_t MaxMeasured,
                                        uint64_t Seed) const {
  const ConfigSpace &Space = Eval.app().space();

  SweepPlan Plan;
  Plan.Strategy = "greedy";
  Plan.Evals = Eval.evaluateMetrics();
  std::vector<size_t> Usable;
  Usable.reserve(Plan.Evals.size());
  for (size_t I = 0; I != Plan.Evals.size(); ++I)
    if (Plan.Evals[I].usable())
      Usable.push_back(I);

  SearchOutcome Out = SearchOutcome::fromPlan(std::move(Plan));
  if (Usable.empty())
    return Out;

  // A probe outcome distinguishes "this neighbor faulted" (skip it, keep
  // climbing) from "measurement budget exhausted" (stop the climb).
  enum class Probe { Ok, Failed, Budget };
  auto MeasureIdx = [&](size_t Idx) {
    ConfigEval &E = Out.Evals[Idx];
    if (E.Measured)
      return Probe::Ok;
    if (E.failed())
      return Probe::Failed;
    if (Out.Candidates.size() >= MaxMeasured)
      return Probe::Budget;
    if (!Eval.measure(E)) {
      Out.noteQuarantined(Idx);
      return Probe::Failed;
    }
    Out.Candidates.push_back(Idx);
    Out.noteMeasured(Idx);
    return Probe::Ok;
  };

  // Usable flat-index lookup for neighbor resolution.
  auto FindUsable = [&](const ConfigPoint &P) -> size_t {
    for (size_t I : Usable)
      if (Out.Evals[I].Point == P)
        return I;
    return size_t(-1);
  };

  // Pick a start that actually measures; a faulting start is quarantined
  // and redrawn (bounded attempts — with heavy injection every draw may
  // fail, in which case the outcome reports the quarantine and no best).
  Rng R(Seed);
  size_t Current = size_t(-1);
  for (size_t Attempt = 0; Attempt != Usable.size(); ++Attempt) {
    size_t Pick = Usable[R.nextBelow(Usable.size())];
    Probe P = MeasureIdx(Pick);
    if (P == Probe::Ok) {
      Current = Pick;
      break;
    }
    if (P == Probe::Budget)
      break;
  }
  if (Current == size_t(-1))
    return finishGreedy(Out);

  bool Improved = true;
  while (Improved && Out.Candidates.size() < MaxMeasured) {
    Improved = false;
    // Enumerate one-step neighbors along every dimension.
    for (size_t D = 0; D != Space.numDims(); ++D) {
      const std::vector<int> &Vals = Space.dim(D).Values;
      const ConfigPoint &Here = Out.Evals[Current].Point;
      size_t ValIdx = std::find(Vals.begin(), Vals.end(), Here[D]) -
                      Vals.begin();
      for (int Step : {-1, 1}) {
        if ((Step < 0 && ValIdx == 0) ||
            (Step > 0 && ValIdx + 1 >= Vals.size()))
          continue;
        ConfigPoint Neighbor = Here;
        Neighbor[D] = Vals[ValIdx + Step];
        size_t Idx = FindUsable(Neighbor);
        if (Idx == size_t(-1))
          continue;
        Probe P = MeasureIdx(Idx);
        if (P == Probe::Budget)
          return finishGreedy(Out);
        if (P == Probe::Failed)
          continue;
        if (Out.Evals[Idx].TimeSeconds <
            Out.Evals[Current].TimeSeconds) {
          Current = Idx;
          Improved = true;
        }
      }
    }
  }
  return finishGreedy(Out);
}

SearchOutcome SearchEngine::finishGreedy(SearchOutcome Out) {
  std::sort(Out.Candidates.begin(), Out.Candidates.end());
  std::sort(Out.Quarantined.begin(), Out.Quarantined.end());
  return Out;
}

SearchOutcome SearchEngine::randomSample(size_t K, uint64_t Seed) const {
  return measureCandidates(planRandom(K, Seed));
}
