//===- support/Subprocess.h - Forked worker with a line pipe --------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process isolation for sweep measurement: a worker is a fork()ed child
/// that runs a callback and streams newline-delimited result records back
/// over a pipe.  The parent harvests lines with a per-line wall-clock
/// timeout, so a worker that segfaults, aborts, exits nonzero, or hangs
/// costs the sweep only the configuration that was in flight — the parent
/// never dies with it.
///
/// On platforms without fork (gated at compile time), subprocessSupported()
/// is false and callers degrade to in-process execution.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SUPPORT_SUBPROCESS_H
#define G80TUNE_SUPPORT_SUBPROCESS_H

#include <functional>
#include <string>
#include <string_view>

namespace g80 {

/// True when this platform can fork isolated workers.
bool subprocessSupported();

/// How a worker left the world, observed after EOF or a kill.
struct WorkerExit {
  enum class Kind {
    CleanExit, ///< _exit(0) after finishing its shard.
    BadExit,   ///< _exit(nonzero) — treated like a crash.
    Signaled,  ///< Died on a signal (SIGSEGV, SIGABRT, SIGKILL, ...).
    Unknown,   ///< Could not be reaped.
  };
  Kind K = Kind::Unknown;
  int Code = 0; ///< Exit status or signal number.
};

/// One forked worker.  Movable, not copyable; the destructor kills and
/// reaps any still-running child so a parent error path cannot leak
/// processes.
class Subprocess {
public:
  /// Emits one record line from the worker to the parent.  The line must
  /// not contain '\n'.
  using Emit = std::function<void(std::string_view)>;

  Subprocess() = default;
  Subprocess(Subprocess &&Other) noexcept;
  Subprocess &operator=(Subprocess &&Other) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  ~Subprocess();

  /// Forks a worker running \p Body(emit).  The child _exit(0)s when Body
  /// returns; it never runs parent cleanup (atexit, destructors).  Returns
  /// an invalid Subprocess when fork is unavailable or fails.
  static Subprocess spawn(
      const std::function<void(const Emit &)> &Body);

  bool valid() const { return Pid > 0; }

  /// What poll() observed.
  enum class Poll {
    Line,    ///< \p Line holds one complete record.
    Exited,  ///< Pipe closed and child reaped; see exitStatus().
    Timeout, ///< No complete line within the budget; child still runs.
  };

  /// Waits up to \p TimeoutSeconds for the next complete line.  Partial
  /// data received before the deadline extends nothing: the clock covers
  /// the whole line.
  Poll poll(double TimeoutSeconds, std::string &Line);

  /// SIGKILLs and reaps the child (no-op if already exited).
  void kill();

  /// Valid after poll() returned Exited or kill().
  WorkerExit exitStatus() const { return Exit; }

private:
  long Pid = -1;
  int ReadFd = -1;
  std::string Buffer;
  bool Eof = false;
  WorkerExit Exit;

  void reap(bool Force);
  bool takeLine(std::string &Line);
};

} // namespace g80

#endif // G80TUNE_SUPPORT_SUBPROCESS_H
