//===- bench/microbench.cpp - library component microbenchmarks ---------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the library's own hot paths: the
// point of the paper's method is that the *static* pipeline (codegen +
// profile + resource estimate + occupancy + metrics + Pareto) is orders
// of magnitude cheaper than measuring a configuration, so those paths
// are worth tracking.
//
//===----------------------------------------------------------------------===//

#include "arch/Occupancy.h"
#include "core/Evaluation.h"
#include "core/Pareto.h"
#include "emu/Emulator.h"
#include "kernels/MatMul.h"
#include "metrics/Metrics.h"
#include "ptx/ResourceEstimator.h"
#include "ptx/StaticProfile.h"
#include "sim/Simulator.h"
#include "sim/Trace.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace g80;

namespace {

const MatMulApp &matmul() {
  static MatMulApp App(MatMulProblem::bench());
  return App;
}

ConfigPoint exampleConfig() { return {16, 2, 4, 1, 0}; }

void BM_OccupancyCalc(benchmark::State &State) {
  MachineModel M = MachineModel::geForce8800Gtx();
  unsigned Regs = 10;
  for (auto _ : State) {
    Occupancy O = computeOccupancy(M, 256, {Regs, 4096});
    benchmark::DoNotOptimize(O);
    Regs = Regs % 32 + 1;
  }
}
BENCHMARK(BM_OccupancyCalc);

void BM_KernelGeneration(benchmark::State &State) {
  for (auto _ : State) {
    Kernel K = matmul().buildKernel(exampleConfig());
    benchmark::DoNotOptimize(K.numVRegs());
  }
}
BENCHMARK(BM_KernelGeneration);

void BM_StaticProfile(benchmark::State &State) {
  Kernel K = matmul().buildKernel(exampleConfig());
  for (auto _ : State) {
    StaticProfile P = computeStaticProfile(K);
    benchmark::DoNotOptimize(P.DynInstrs);
  }
}
BENCHMARK(BM_StaticProfile);

void BM_RegisterEstimate(benchmark::State &State) {
  Kernel K = matmul().buildKernel(exampleConfig());
  for (auto _ : State) {
    unsigned R = estimateRegisters(K);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_RegisterEstimate);

void BM_FullMetricPipeline(benchmark::State &State) {
  // What replaces one hardware measurement: codegen + everything static.
  MachineModel M = MachineModel::geForce8800Gtx();
  for (auto _ : State) {
    Kernel K = matmul().buildKernel(exampleConfig());
    KernelMetrics KM =
        computeKernelMetrics(K, matmul().launch(exampleConfig()), M);
    benchmark::DoNotOptimize(KM.Efficiency);
  }
}
BENCHMARK(BM_FullMetricPipeline);

void BM_TraceBuild(benchmark::State &State) {
  Kernel K = matmul().buildKernel(exampleConfig());
  for (auto _ : State) {
    TraceProgram P = buildTrace(K);
    benchmark::DoNotOptimize(P.Entries.size());
  }
}
BENCHMARK(BM_TraceBuild);

void BM_ParetoFront(benchmark::State &State) {
  Rng R(42);
  std::vector<std::array<double, 2>> Points(size_t(State.range(0)));
  for (auto &P : Points)
    P = {R.nextDouble(), R.nextDouble()};
  for (auto _ : State) {
    auto F = paretoFront(Points);
    benchmark::DoNotOptimize(F.size());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ParetoFront)->Range(64, 16384)->Complexity();

void BM_SimulateSmallMatMul(benchmark::State &State) {
  // One measurement at a reduced problem size, for the static/measured
  // cost ratio.  Parameterized over the scheduler core: Arg(0) is the
  // default event engine, Arg(1) the reference scan engine; the ratio of
  // the two is the engine speedup on this kernel.
  MatMulApp App(MatMulProblem{128});
  Kernel K = App.buildKernel(exampleConfig());
  MachineModel M = MachineModel::geForce8800Gtx();
  SimOptions Opts;
  Opts.EngineSel = State.range(0) ? SimOptions::Engine::Scan
                                  : SimOptions::Engine::Event;
  for (auto _ : State) {
    Expected<SimResult> R =
        simulateKernel(K, App.launch(exampleConfig()), M, Opts);
    benchmark::DoNotOptimize(R->Cycles);
  }
}
BENCHMARK(BM_SimulateSmallMatMul)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("scan");

void BM_EmulateTinyMatMul(benchmark::State &State) {
  MatMulApp App(MatMulProblem{32});
  ConfigPoint P = {16, 1, 0, 0, 0};
  for (auto _ : State) {
    double Err = App.verifyConfig(P);
    benchmark::DoNotOptimize(Err);
  }
}
BENCHMARK(BM_EmulateTinyMatMul);

void BM_SpaceEnumeration(benchmark::State &State) {
  const ConfigSpace &S = matmul().space();
  for (auto _ : State) {
    auto Points = S.enumerate();
    benchmark::DoNotOptimize(Points.size());
  }
}
BENCHMARK(BM_SpaceEnumeration);

void BM_EvaluateMetricsSpace(benchmark::State &State) {
  // The whole static phase over the full space, at the given thread
  // count.  A fresh evaluator per iteration — the memo would otherwise
  // turn every iteration after the first into a cache hit.
  MachineModel M = MachineModel::geForce8800Gtx();
  unsigned Jobs = unsigned(State.range(0));
  for (auto _ : State) {
    Evaluator E(matmul(), M);
    auto Evals = E.evaluateMetrics(Jobs);
    benchmark::DoNotOptimize(Evals.size());
  }
}
BENCHMARK(BM_EvaluateMetricsSpace)->Arg(1)->Arg(2)->Arg(4);

void BM_MeasureKernelMemoHit(benchmark::State &State) {
  // measure() after the kernel cache is warm: isolates simulation cost
  // from codegen, the steady state of a driven sweep that planned first.
  MatMulApp App(MatMulProblem{128});
  MachineModel M = MachineModel::geForce8800Gtx();
  Evaluator E(App, M);
  auto Evals = E.evaluateMetrics();
  ConfigEval *Target = nullptr;
  for (ConfigEval &CE : Evals)
    if (CE.usable()) {
      Target = &CE;
      break;
    }
  for (auto _ : State) {
    Target->Measured = false;
    E.measure(*Target);
    benchmark::DoNotOptimize(Target->Sim.Cycles);
  }
}
BENCHMARK(BM_MeasureKernelMemoHit);

void BM_BandwidthFastPathEstimate(benchmark::State &State) {
  // The analytic estimate that replaces full simulation for
  // bandwidth-bound configurations under --fast-bw.
  Kernel K = matmul().buildKernel(exampleConfig());
  MachineModel M = MachineModel::geForce8800Gtx();
  LaunchConfig LC = matmul().launch(exampleConfig());
  for (auto _ : State) {
    Expected<SimResult> R = estimateBandwidthBoundKernel(K, LC, M);
    benchmark::DoNotOptimize(R->Cycles);
  }
}
BENCHMARK(BM_BandwidthFastPathEstimate);

} // namespace

BENCHMARK_MAIN();
