//===- tests/FaultToleranceTest.cpp - quarantine & fault injection -----------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage of the fault-tolerant evaluation pipeline: structured
// per-stage diagnostics for malformed kernels, the simulator watchdog
// (timeout and divergent-barrier deadlock), deterministic fault injection,
// quarantine-and-continue semantics of SearchEngine sweeps, and the
// kill-and-resume guarantees of journaled SweepDriver runs.
//
//===----------------------------------------------------------------------===//

#include "ToyApps.h"

#include "core/Search.h"
#include "core/SweepDriver.h"

#include "emu/Emulator.h"
#include "ptx/Builder.h"
#include "ptx/Parser.h"
#include "ptx/ResourceEstimator.h"
#include "analysis/Verifier.h"
#include "sim/Simulator.h"
#include "support/FaultInjection.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

using namespace g80;

namespace {

MachineModel gtx() { return MachineModel::geForce8800Gtx(); }

//===--- Malformed-kernel corpus: one diagnostic per pipeline stage -----------//

TEST(MalformedCorpus, TruncatedInputIsParseError) {
  Expected<Kernel> R = parseKernel(".entry k ()\n{\n  mov %r0, 1;\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::ParseError);
  EXPECT_EQ(R.diag().At, Stage::Parse);
}

TEST(MalformedCorpus, UnknownOpcodeIsParseErrorWithLine) {
  Expected<Kernel> R = parseKernel(".entry k ()\n{\n  frob %r0, %r1;\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::ParseError);
  EXPECT_EQ(R.diag().Line, 3u);
  EXPECT_NE(R.diag().str().find("line 3"), std::string::npos);
}

TEST(MalformedCorpus, ZeroTripLoopTextIsParseError) {
  Expected<Kernel> R =
      parseKernel(".entry k ()\n{\n  loop x0 {\n  }\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::ParseError);
  EXPECT_NE(R.diag().Message.find("loop"), std::string::npos);
}

TEST(MalformedCorpus, ZeroTripLoopIrFailsVerify) {
  // The builder can express what the text syntax rejects; the verifier is
  // the backstop.
  KernelBuilder B("zerotrip");
  B.forLoop(0, [&] { B.mov(B.imm(1)); });
  Kernel K = B.take();
  Expected<Unit> V = checkKernel(K);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.diag().Code, ErrorCode::VerifyFailed);
  EXPECT_EQ(V.diag().At, Stage::Verify);
  EXPECT_NE(V.diag().Message.find("zero trip count"), std::string::npos);
}

TEST(MalformedCorpus, UseBeforeDefFailsVerify) {
  Expected<Kernel> R = parseKernel(
      ".entry k (.param .global .f32* g)\n{\n  st.global.f32 [g], %r5;\n}\n");
  ASSERT_TRUE(R.ok());
  Expected<Unit> V = checkKernel(*R);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.diag().Code, ErrorCode::VerifyFailed);
  EXPECT_NE(V.diag().Message.find("before any definition"),
            std::string::npos);
}

TEST(MalformedCorpus, RegisterOverflowFailsEstimate) {
  // ~300 simultaneously live registers: more than even a one-warp block
  // could be granted (8192 / 32 = 256).
  KernelBuilder B("hog");
  unsigned Out = B.addGlobalPtr("out");
  std::vector<Reg> Live;
  for (int I = 0; I != 300; ++I)
    Live.push_back(B.mov(B.imm(float(I))));
  Reg Sum = Live[0];
  for (int I = 1; I != 300; ++I)
    Sum = B.addf(Sum, Live[size_t(I)]);
  B.stGlobal(Out, Operand(), 0, Sum);
  Kernel K = B.take();

  Expected<KernelResources> R = estimateResourcesChecked(K, gtx());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::ResourceOverflow);
  EXPECT_EQ(R.diag().At, Stage::Estimate);
}

//===--- Simulator watchdog ----------------------------------------------------//

/// A barrier nested in a divergent if-region: hangs the block on real
/// hardware; the simulator must report it, not spin.
Kernel divergentBarrierKernel() {
  KernelBuilder B("badbar");
  unsigned Out = B.addGlobalPtr("out");
  Reg Tx = B.mov(B.special(SpecialReg::TidX));
  Reg P = B.setpi(CmpKind::Lt, Tx, B.imm(1));
  B.ifThen(P, /*Uniform=*/false, [&] { B.bar(); });
  B.stGlobal(Out, Operand(), 0, Tx);
  return B.take();
}

TEST(Watchdog, DivergentBarrierReportsDeadlock) {
  Expected<SimResult> R = simulateKernel(
      divergentBarrierKernel(), LaunchConfig(Dim3(16), Dim3(64)), gtx());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::SimulatorDeadlock);
  EXPECT_EQ(R.diag().At, Stage::Simulate);
  EXPECT_NE(R.diag().Message.find("deadlock"), std::string::npos);
}

TEST(Watchdog, DeadlockDetectedWithinCycleBudget) {
  // Deadlock detection is event-driven (no runnable warp), so it fires
  // long before the cycle budget; a tiny budget must not be needed.
  SimOptions Opts;
  Opts.MaxCycles = 1u << 20;
  Expected<SimResult> R =
      simulateKernel(divergentBarrierKernel(),
                     LaunchConfig(Dim3(16), Dim3(64)), gtx(), Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::SimulatorDeadlock);
}

TEST(Watchdog, CycleBudgetExhaustionReportsTimeout) {
  KernelBuilder B("long");
  unsigned Out = B.addGlobalPtr("out");
  Reg V = B.mov(B.imm(0.0f));
  B.forLoop(1000, [&] { B.emitTo(V, Opcode::AddF, V, B.imm(1.0f)); });
  B.stGlobal(Out, Operand(), 0, V);
  Kernel K = B.take();

  SimOptions Tight;
  Tight.MaxCycles = 64;
  Expected<SimResult> R =
      simulateKernel(K, LaunchConfig(Dim3(16), Dim3(64)), gtx(), Tight);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::SimulatorTimeout);
  EXPECT_EQ(R.diag().At, Stage::Simulate);
}

TEST(Watchdog, IssueBudgetExhaustionReportsTimeout) {
  KernelBuilder B("long2");
  unsigned Out = B.addGlobalPtr("out");
  Reg V = B.mov(B.imm(0.0f));
  B.forLoop(1000, [&] { B.emitTo(V, Opcode::AddF, V, B.imm(1.0f)); });
  B.stGlobal(Out, Operand(), 0, V);
  Kernel K = B.take();

  SimOptions Tight;
  Tight.MaxIssues = 32;
  Expected<SimResult> R =
      simulateKernel(K, LaunchConfig(Dim3(16), Dim3(64)), gtx(), Tight);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.diag().Code, ErrorCode::SimulatorTimeout);
}

TEST(Watchdog, DefaultBudgetsDoNotFireOnHealthyKernels) {
  KernelBuilder B("healthy");
  unsigned Out = B.addGlobalPtr("out");
  Reg V = B.mov(B.imm(0.0f));
  B.forLoop(100, [&] { B.emitTo(V, Opcode::AddF, V, B.imm(1.0f)); });
  B.stGlobal(Out, Operand(), 0, V);
  Expected<SimResult> R =
      simulateKernel(B.take(), LaunchConfig(Dim3(32), Dim3(128)), gtx());
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R->Cycles, 0u);
}

//===--- Fault-injection plumbing ----------------------------------------------//

TEST(FaultInjection, DisabledInjectorNeverFires) {
  FaultInjector Off;
  EXPECT_FALSE(Off.enabled());
  for (uint64_t I = 0; I != 64; ++I)
    for (size_t S = 0; S != NumStages; ++S)
      EXPECT_FALSE(Off.at(Stage(S), I).has_value());
}

TEST(FaultInjection, RateOneAlwaysFiresRateZeroNever) {
  FaultPlan Plan;
  Plan.Rate[size_t(Stage::Simulate)] = 1.0;
  FaultInjector Inj(Plan);
  ASSERT_TRUE(Inj.enabled());
  for (uint64_t I = 0; I != 32; ++I) {
    EXPECT_TRUE(Inj.at(Stage::Simulate, I).has_value());
    EXPECT_FALSE(Inj.at(Stage::Parse, I).has_value());
  }
}

TEST(FaultInjection, DeterministicPerSeedAndIndex) {
  FaultPlan Plan;
  Plan.Seed = 99;
  Plan.Rate[size_t(Stage::Emulate)] = 0.5;
  FaultInjector A(Plan), B(Plan);
  unsigned Fired = 0;
  for (uint64_t I = 0; I != 256; ++I) {
    bool HitA = A.at(Stage::Emulate, I).has_value();
    EXPECT_EQ(HitA, B.at(Stage::Emulate, I).has_value()) << I;
    Fired += HitA;
  }
  // A 0.5 rate over 256 indices: comfortably between the extremes.
  EXPECT_GT(Fired, 64u);
  EXPECT_LT(Fired, 192u);

  Plan.Seed = 100;
  FaultInjector C(Plan);
  bool AnyDiffers = false;
  for (uint64_t I = 0; I != 256 && !AnyDiffers; ++I)
    AnyDiffers = A.at(Stage::Emulate, I).has_value() !=
                 C.at(Stage::Emulate, I).has_value();
  EXPECT_TRUE(AnyDiffers);
}

TEST(FaultInjection, TargetsPinStageIndexAndCode) {
  FaultPlan Plan;
  Plan.Targets.push_back({17, Stage::Verify, ErrorCode::VerifyFailed});
  FaultInjector Inj(Plan);
  std::optional<Diagnostic> D = Inj.at(Stage::Verify, 17);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Code, ErrorCode::VerifyFailed);
  EXPECT_EQ(D->At, Stage::Verify);
  EXPECT_FALSE(Inj.at(Stage::Verify, 16).has_value());
  EXPECT_FALSE(Inj.at(Stage::Parse, 17).has_value());
}

TEST(FaultInjection, PlanSpecParses) {
  Expected<FaultPlan> P =
      parseFaultPlan("seed=7,parse=0.25,deadlock@17,timeout@31,verify@4");
  ASSERT_TRUE(P.ok());
  EXPECT_EQ(P->Seed, 7u);
  EXPECT_DOUBLE_EQ(P->Rate[size_t(Stage::Parse)], 0.25);
  ASSERT_EQ(P->Targets.size(), 3u);
  EXPECT_EQ(P->Targets[0].At, Stage::Simulate);
  EXPECT_EQ(P->Targets[0].Code, ErrorCode::SimulatorDeadlock);
  EXPECT_EQ(P->Targets[1].Code, ErrorCode::SimulatorTimeout);
  EXPECT_EQ(P->Targets[2].At, Stage::Verify);
}

TEST(FaultInjection, ActionSpecParses) {
  Expected<FaultPlan> P = parseFaultPlan("crash@7,hang@13,deadlock@2");
  ASSERT_TRUE(P.ok());
  ASSERT_EQ(P->Actions.size(), 2u);
  EXPECT_EQ(P->Actions[0].ConfigIndex, 7u);
  EXPECT_EQ(P->Actions[0].Action, FaultAction::Crash);
  EXPECT_EQ(P->Actions[1].ConfigIndex, 13u);
  EXPECT_EQ(P->Actions[1].Action, FaultAction::Hang);
  ASSERT_EQ(P->Targets.size(), 1u); // deadlock@2 still a diagnostic target

  FaultInjector Inj(*P);
  EXPECT_EQ(Inj.actionAt(7), FaultAction::Crash);
  EXPECT_EQ(Inj.actionAt(13), FaultAction::Hang);
  EXPECT_EQ(Inj.actionAt(8), FaultAction::None);
  EXPECT_FALSE(parseFaultPlan("crash@x").ok());
}

TEST(FaultInjection, PlanSpecRejectsGarbage) {
  EXPECT_FALSE(parseFaultPlan("warp=0.5").ok());
  EXPECT_FALSE(parseFaultPlan("parse=1.5").ok());
  EXPECT_FALSE(parseFaultPlan("parse=x").ok());
  EXPECT_FALSE(parseFaultPlan("emulate@x").ok());
  EXPECT_FALSE(parseFaultPlan("nonsense").ok());
  EXPECT_TRUE(parseFaultPlan("").ok());
  EXPECT_TRUE(parseFaultPlan("")->empty());
}

//===--- Quarantine-and-continue sweeps ----------------------------------------//

// The 100-configuration ToyApp (5 block sizes x 20 chain lengths) lives in
// ToyApps.h, shared with DurabilityTest.
const ToyApp &toy() {
  static ToyApp App;
  return App;
}

/// Uninjected ground truth for the toy space.
const SearchOutcome &toyBaseline() {
  static SearchOutcome Out =
      SearchEngine(toy(), gtx()).exhaustive();
  return Out;
}

TEST(Quarantine, ToyBaselineIsFullyMeasurable) {
  const SearchOutcome &Out = toyBaseline();
  EXPECT_EQ(Out.ValidCount, 100u);
  EXPECT_EQ(Out.Candidates.size(), 100u);
  EXPECT_TRUE(Out.Quarantined.empty());
  ASSERT_TRUE(Out.hasBest());
  for (size_t S = 0; S != NumStages; ++S)
    EXPECT_EQ(Out.FailedPerStage[S], 0u);
}

/// The acceptance scenario: a 100-config sweep with a failure injected at
/// every pipeline stage completes, quarantines exactly the injected
/// configurations with correct stage tags, and still finds the true
/// optimum among the survivors.
TEST(Quarantine, InjectedSweepQuarantinesExactlyAndFindsOptimum) {
  const SearchOutcome &Base = toyBaseline();
  ASSERT_TRUE(Base.hasBest());

  // Six victims, one per stage (Simulate twice: timeout and deadlock),
  // none of them the true optimum.
  std::vector<uint64_t> Victims;
  for (uint64_t I = 0; Victims.size() < 6 && I != 100; ++I)
    if (I != Base.BestIndex)
      Victims.push_back(I);
  FaultPlan Plan;
  Plan.Targets.push_back(
      {Victims[0], Stage::Parse, ErrorCode::ParseError});
  Plan.Targets.push_back(
      {Victims[1], Stage::Verify, ErrorCode::VerifyFailed});
  Plan.Targets.push_back(
      {Victims[2], Stage::Estimate, ErrorCode::ResourceOverflow});
  Plan.Targets.push_back(
      {Victims[3], Stage::Emulate, ErrorCode::EmulationFault});
  Plan.Targets.push_back(
      {Victims[4], Stage::Simulate, ErrorCode::SimulatorTimeout});
  Plan.Targets.push_back(
      {Victims[5], Stage::Simulate, ErrorCode::SimulatorDeadlock});

  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  SearchOutcome Out = Engine.exhaustive();

  // The sweep completed and quarantined exactly the six victims.
  std::vector<size_t> WantQuarantine(Victims.begin(), Victims.end());
  std::sort(WantQuarantine.begin(), WantQuarantine.end());
  std::vector<size_t> GotQuarantine = Out.Quarantined;
  std::sort(GotQuarantine.begin(), GotQuarantine.end());
  EXPECT_EQ(GotQuarantine, WantQuarantine);

  // Correct stage tags and codes on each victim.
  EXPECT_EQ(Out.Evals[Victims[0]].Failure.At, Stage::Parse);
  EXPECT_EQ(Out.Evals[Victims[1]].Failure.At, Stage::Verify);
  EXPECT_EQ(Out.Evals[Victims[2]].Failure.At, Stage::Estimate);
  EXPECT_EQ(Out.Evals[Victims[3]].Failure.At, Stage::Emulate);
  EXPECT_EQ(Out.Evals[Victims[4]].Failure.Code,
            ErrorCode::SimulatorTimeout);
  EXPECT_EQ(Out.Evals[Victims[5]].Failure.Code,
            ErrorCode::SimulatorDeadlock);

  // Per-stage counters agree.
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Parse)], 1u);
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Verify)], 1u);
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Estimate)], 1u);
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Emulate)], 1u);
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Simulate)], 2u);

  // The three metric-stage victims fell out of the usable count; the two
  // measure-stage victims were still candidates when they faulted.
  EXPECT_EQ(Out.ValidCount, 97u);

  // Untouched configurations still measured; the true optimum survived.
  ASSERT_TRUE(Out.hasBest());
  EXPECT_EQ(Out.BestIndex, Base.BestIndex);
  EXPECT_DOUBLE_EQ(Out.BestTime, Base.BestTime);
  for (const ConfigEval &E : Out.Evals) {
    if (!E.failed()) {
      EXPECT_TRUE(E.Measured);
    }
  }
}

TEST(Quarantine, ProbabilisticInjectionStillFindsABest) {
  FaultPlan Plan;
  Plan.Seed = 5;
  Plan.Rate[size_t(Stage::Simulate)] = 0.3;
  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  SearchOutcome Out = Engine.exhaustive();
  EXPECT_FALSE(Out.Quarantined.empty());
  EXPECT_LT(Out.Quarantined.size(), 100u);
  ASSERT_TRUE(Out.hasBest());
  EXPECT_FALSE(Out.Evals[Out.BestIndex].failed());
  EXPECT_EQ(Out.Quarantined.size(),
            Out.FailedPerStage[size_t(Stage::Simulate)]);
}

TEST(Quarantine, AllCandidatesFailingIsWellDefined) {
  FaultPlan Plan;
  Plan.Rate[size_t(Stage::Simulate)] = 1.0;
  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  SearchOutcome Out = Engine.exhaustive();
  EXPECT_FALSE(Out.hasBest());
  EXPECT_EQ(Out.Quarantined.size(), 100u);
  EXPECT_EQ(Out.TotalMeasuredSeconds, 0.0);
  // No max()/inf leaks into the summary arithmetic.
  double R = Out.spaceReduction();
  EXPECT_GE(R, 0.0);
  EXPECT_LE(R, 1.0);
}

TEST(Quarantine, MetricStageFailuresShrinkValidCount) {
  FaultPlan Plan;
  Plan.Rate[size_t(Stage::Verify)] = 1.0;
  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  SearchOutcome Out = Engine.exhaustive();
  EXPECT_EQ(Out.ValidCount, 0u);
  EXPECT_TRUE(Out.Candidates.empty());
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Verify)], 100u);
  EXPECT_FALSE(Out.hasBest());
  EXPECT_EQ(Out.spaceReduction(), 0.0);
}

TEST(Quarantine, GreedyClimbSkipsFailedNeighbors) {
  FaultPlan Plan;
  Plan.Seed = 3;
  Plan.Rate[size_t(Stage::Simulate)] = 0.25;
  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  SearchOutcome Out = Engine.greedyClimb(40, 11);
  // The climb terminates, measures something, and every candidate is a
  // successful measurement (failures live in Quarantined instead).
  ASSERT_TRUE(Out.hasBest());
  for (size_t I : Out.Candidates) {
    EXPECT_TRUE(Out.Evals[I].Measured);
    EXPECT_FALSE(Out.Evals[I].failed());
  }
  for (size_t I : Out.Quarantined)
    EXPECT_TRUE(Out.Evals[I].failed());
}

TEST(Quarantine, RealDeadlockQuarantinedInSweep) {
  // Not an injection: an app whose odd-chain variants genuinely contain a
  // divergent barrier.  The simulator's deadlock detection must quarantine
  // them while the sweep measures the rest.
  class MixedApp : public TunableApp {
  public:
    MixedApp() { Space.addDim("variant", {0, 1, 2, 3, 4, 5}); }
    std::string_view name() const override { return "mixed"; }
    const ConfigSpace &space() const override { return Space; }
    Kernel buildKernel(const ConfigPoint &P) const override {
      bool Bad = (Space.valueOf(P, "variant") % 2) == 1;
      KernelBuilder B(Bad ? "bad" : "good");
      unsigned Out = B.addGlobalPtr("out");
      Reg Tx = B.mov(B.special(SpecialReg::TidX));
      if (Bad) {
        Reg Pr = B.setpi(CmpKind::Lt, Tx, B.imm(1));
        B.ifThen(Pr, /*Uniform=*/false, [&] { B.bar(); });
      } else {
        B.bar();
      }
      B.stGlobal(Out, B.shli(Tx, B.imm(2)), 0, Tx);
      return B.take();
    }
    LaunchConfig launch(const ConfigPoint &) const override {
      return LaunchConfig(Dim3(16), Dim3(64));
    }
    double verifyConfig(const ConfigPoint &) const override { return 0; }

  private:
    ConfigSpace Space;
  };

  MixedApp App;
  SearchOutcome Out = SearchEngine(App, gtx()).exhaustive();
  ASSERT_EQ(Out.Evals.size(), 6u);
  EXPECT_EQ(Out.Quarantined.size(), 3u);
  EXPECT_EQ(Out.FailedPerStage[size_t(Stage::Simulate)], 3u);
  for (size_t I : Out.Quarantined)
    EXPECT_EQ(Out.Evals[I].Failure.Code, ErrorCode::SimulatorDeadlock);
  ASSERT_TRUE(Out.hasBest());
  EXPECT_EQ(Out.BestIndex % 2, 0u);
}

//===--- Kill-and-resume: journaled sweeps survive being interrupted -----------//

std::string tmpJournal(const char *Name) {
  std::string Path = testing::TempDir() + "g80_ft_" + Name + ".jsonl";
  std::remove(Path.c_str());
  return Path;
}

/// The fingerprint a toy exhaustive sweep writes/expects.
JournalHeader toyFingerprint(const std::string &Extra = "") {
  JournalHeader H;
  H.App = "toy";
  H.Machine = gtx().Name;
  H.Strategy = "exhaustive";
  H.Seed = 1;
  H.Budget = 0;
  H.RawSize = toy().space().rawSize();
  H.Extra = Extra;
  return H;
}

SweepReport runJournaled(const SearchEngine &Engine, const std::string &Path,
                         bool Resume, const std::string &Extra = "") {
  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Resume = Resume;
  Opts.Fingerprint = toyFingerprint(Extra);
  return SweepDriver(Engine, Opts).run(Engine.planExhaustive());
}

/// Simulates a SIGKILL after \p Keep fsync'd records: rewrites the journal
/// as header + the first Keep records.
void truncateToRecords(const std::string &Path, size_t Keep) {
  std::ifstream In(Path);
  std::string Line, Out;
  size_t Lines = 0;
  while (Lines < Keep + 1 && std::getline(In, Line)) {
    Out += Line;
    Out += '\n';
    ++Lines;
  }
  In.close();
  std::ofstream(Path, std::ios::trunc) << Out;
}

/// Everything resume must reconstruct bit-identically.
void expectSameOutcome(const SearchOutcome &Got, const SearchOutcome &Want) {
  EXPECT_EQ(Got.Strategy, Want.Strategy);
  EXPECT_EQ(Got.ValidCount, Want.ValidCount);
  EXPECT_EQ(Got.Candidates, Want.Candidates);
  std::vector<size_t> GotQ = Got.Quarantined, WantQ = Want.Quarantined;
  std::sort(GotQ.begin(), GotQ.end());
  std::sort(WantQ.begin(), WantQ.end());
  EXPECT_EQ(GotQ, WantQ);
  EXPECT_EQ(Got.FailedPerStage, Want.FailedPerStage);
  EXPECT_EQ(Got.BestIndex, Want.BestIndex);
  EXPECT_EQ(Got.BestTime, Want.BestTime);
  EXPECT_EQ(Got.TotalMeasuredSeconds, Want.TotalMeasuredSeconds);
  ASSERT_EQ(Got.Evals.size(), Want.Evals.size());
  for (size_t I = 0; I != Got.Evals.size(); ++I) {
    EXPECT_EQ(Got.Evals[I].Measured, Want.Evals[I].Measured) << I;
    EXPECT_EQ(Got.Evals[I].TimeSeconds, Want.Evals[I].TimeSeconds) << I;
    EXPECT_EQ(Got.Evals[I].failed(), Want.Evals[I].failed()) << I;
  }
}

TEST(Resume, KilledMidSweepResumesToIdenticalOutcome) {
  SearchEngine Engine(toy(), gtx());
  std::string Path = tmpJournal("kill");

  SweepReport Full = runJournaled(Engine, Path, /*Resume=*/false);
  ASSERT_EQ(Full.Status, SweepStatus::Completed);
  expectSameOutcome(Full.Outcome, toyBaseline());

  // Kill points early, middle, and one-before-done.
  for (size_t Keep : {size_t(3), size_t(50), size_t(99)}) {
    SweepReport Again = runJournaled(Engine, Path, /*Resume=*/false);
    ASSERT_EQ(Again.Status, SweepStatus::Completed);
    truncateToRecords(Path, Keep);
    SweepReport Res = runJournaled(Engine, Path, /*Resume=*/true);
    ASSERT_EQ(Res.Status, SweepStatus::Completed);
    EXPECT_EQ(Res.ResumedSkipped, Keep);
    expectSameOutcome(Res.Outcome, toyBaseline());
  }
}

TEST(Resume, TornFinalRecordIsDroppedAndRemeasured) {
  SearchEngine Engine(toy(), gtx());
  std::string Path = tmpJournal("torn");
  ASSERT_EQ(runJournaled(Engine, Path, false).Status,
            SweepStatus::Completed);
  truncateToRecords(Path, 40);
  // The kill landed mid-write: a partial record with no trailing newline.
  {
    std::ofstream App(Path, std::ios::app);
    App << "{\"crc\":\"0123456789abcdef\",\"rec\":{\"idx\":40,\"po";
  }
  SweepReport Res = runJournaled(Engine, Path, /*Resume=*/true);
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  EXPECT_TRUE(Res.TornTailDropped);
  EXPECT_EQ(Res.ResumedSkipped, 40u);
  expectSameOutcome(Res.Outcome, toyBaseline());

  // The repaired journal must itself be resumable (truncate-and-continue
  // left no scar).
  SweepReport Res2 = runJournaled(Engine, Path, /*Resume=*/true);
  ASSERT_EQ(Res2.Status, SweepStatus::Completed);
  EXPECT_FALSE(Res2.TornTailDropped);
  EXPECT_EQ(Res2.ResumedSkipped, 100u);
  expectSameOutcome(Res2.Outcome, toyBaseline());
}

TEST(Resume, StaleJournalIsRejected) {
  SearchEngine Engine(toy(), gtx());
  std::string Path = tmpJournal("stale");
  ASSERT_EQ(runJournaled(Engine, Path, false).Status,
            SweepStatus::Completed);

  SweepOptions Opts;
  Opts.JournalPath = Path;
  Opts.Resume = true;
  Opts.Fingerprint = toyFingerprint();
  Opts.Fingerprint.Seed = 2; // a different sweep
  SweepReport Res = SweepDriver(Engine, Opts).run(Engine.planExhaustive());
  EXPECT_EQ(Res.Status, SweepStatus::Error);
  EXPECT_EQ(Res.Error.Code, ErrorCode::JournalError);
}

TEST(Resume, WithInjectionArmedPreservesQuarantine) {
  FaultPlan Plan;
  Plan.Targets.push_back({7, Stage::Simulate, ErrorCode::SimulatorTimeout});
  Plan.Targets.push_back({41, Stage::Simulate, ErrorCode::SimulatorDeadlock});
  Plan.Targets.push_back({90, Stage::Verify, ErrorCode::VerifyFailed});
  SearchEngine Engine(toy(), gtx(), {}, {}, Plan);
  const std::string Extra = "inject:test";

  SearchOutcome Want = Engine.exhaustive();
  std::string Path = tmpJournal("inject");
  ASSERT_EQ(runJournaled(Engine, Path, false, Extra).Status,
            SweepStatus::Completed);
  truncateToRecords(Path, 30);
  SweepReport Res = runJournaled(Engine, Path, /*Resume=*/true, Extra);
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  expectSameOutcome(Res.Outcome, Want);
  // Quarantined configurations are restored as quarantined, not
  // re-attempted successes.
  EXPECT_EQ(Res.Outcome.Evals[7].Failure.Code, ErrorCode::SimulatorTimeout);
  EXPECT_EQ(Res.Outcome.Evals[41].Failure.Code,
            ErrorCode::SimulatorDeadlock);
}

TEST(Resume, InterruptRequestStopsAtRecordBoundaryAndResumes) {
  SearchEngine Engine(toy(), gtx());
  std::string Path = tmpJournal("intr");

  requestSweepInterrupt();
  SweepReport Stopped = runJournaled(Engine, Path, /*Resume=*/false);
  clearSweepInterrupt();
  EXPECT_EQ(Stopped.Status, SweepStatus::Interrupted);

  SweepReport Res = runJournaled(Engine, Path, /*Resume=*/true);
  ASSERT_EQ(Res.Status, SweepStatus::Completed);
  expectSameOutcome(Res.Outcome, toyBaseline());
}

} // namespace
