//===- kernels/Cp.h - Coulombic potential (CP) -------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CP application (Table 3): "calculation of the electric potential at
/// every point in a 3D grid", derived from the "Unroll8y" molecular-
/// modeling kernel of [23].  Each thread accumulates, over all point
/// charges held in constant memory, q / distance for one or more grid
/// points of a 2D slice.
///
/// Optimization space (Table 4: "block size, per-thread tiling,
/// coalescing of output"), small tier:
///   blocky   {2, 4, 8, 16}   block is 16 x blocky threads
///   tiling   {1, 2, 4, 8, 16} grid points computed per thread (along x);
///                            amortizes the per-atom loads — the Fig. 5
///                            efficiency/utilization tradeoff axis
///   coalesce {0, 1}          1: a thread's points are strided by the
///                            block width so each half-warp writes
///                            consecutive words; 0: adjacent points per
///                            thread (uncoalesced stores)
///
/// The large tier (SpaceTier::Large) adds a `blockx` dimension (block
/// width, 16 in the small tier), `ytile` (grid points per thread along y,
/// each BlockY rows apart), and `unroll` (atom-loop unroll factor) and
/// refines the blocky/tiling lists: 6*10*16*4*14*2 = 107,520 raw points.
///
/// The per-atom inner loop has no global accesses and no barriers, so the
/// rsqrt SFU ops are the blocking instructions of the Regions metric —
/// the "SFU instructions have long latency when longer latency operations
/// are not present" case of §4.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_KERNELS_CP_H
#define G80TUNE_KERNELS_CP_H

#include "core/TunableApp.h"
#include "cpu/Reference.h"

#include <vector>

namespace g80 {

/// Problem description: a W x H potential slice at z = 0 and a fixed,
/// deterministic atom set.
struct CpProblem {
  unsigned W = 256;
  unsigned H = 256;
  unsigned NumAtoms = 512;
  float Spacing = 0.05f;

  static CpProblem emulation() { return {256, 64, 64, 0.05f}; }
  static CpProblem bench() { return {256, 256, 512, 0.05f}; }
};

class CpApp : public TunableApp {
public:
  explicit CpApp(CpProblem Problem, SpaceTier Tier = SpaceTier::Small);

  std::string_view name() const override { return "cp"; }
  const ConfigSpace &space() const override { return Space; }
  bool isExpressible(const ConfigPoint &P) const override;
  Kernel buildKernel(const ConfigPoint &P) const override;
  LaunchConfig launch(const ConfigPoint &P) const override;
  double verifyConfig(const ConfigPoint &P) const override;

  const CpProblem &problem() const { return Problem; }
  const std::vector<CpAtom> &atoms() const { return Atoms; }

private:
  CpProblem Problem;
  ConfigSpace Space;
  std::vector<CpAtom> Atoms;
};

} // namespace g80

#endif // G80TUNE_KERNELS_CP_H
