//===- support/ErrorHandling.cpp ------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace g80;

void g80::reportFatalError(const char *Reason) {
  std::fprintf(stderr, "g80tune fatal error: %s\n", Reason);
  std::abort();
}

void g80::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
