//===- bench/table3_speedups.cpp - Table 3 reproduction ----------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Table 3: "Application Suite" — the four applications and their speedup
// over a highly-optimized single-thread CPU implementation.  The CPU
// side runs for real on this host; the GPU side is the simulated
// GeForce 8800 running each app's best configuration.  Absolute ratios
// are not comparable with the paper (their CPU is a 2007 Core2 with
// ICC+MKL; ours is whatever this host is), but the *ordering* — CP and
// MRI-FHD vastly ahead of MatMul and SAD — should hold, since it is
// driven by arithmetic intensity, not by the hosts.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "cpu/Reference.h"
#include "kernels/Cp.h"
#include "kernels/MatMul.h"
#include "kernels/MriFhd.h"
#include "kernels/Sad.h"
#include "kernels/Workloads.h"
#include "support/Format.h"
#include "support/TextTable.h"

#include <chrono>
#include <functional>
#include <iostream>

using namespace g80;

namespace {

double wallSeconds(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

double bestGpuSeconds(const TunableApp &App) {
  SearchEngine Engine(App, MachineModel::geForce8800Gtx());
  return Engine.paretoPruned().BestTime;
}

} // namespace

int main() {
  std::cout << "=== Table 3: application suite, speedup of the simulated "
               "GeForce 8800 over this host's single-thread CPU ===\n\n";

  TextTable T;
  T.setHeader({"Application", "CPU (ms)", "GPU sim (ms)", "Speedup",
               "Paper speedup"});

  // Matrix multiplication.
  {
    MatMulApp App(MatMulProblem::bench());
    unsigned N = App.problem().N;
    std::vector<float> A = randomFloats(size_t(N) * N, 1);
    std::vector<float> Bm = randomFloats(size_t(N) * N, 2);
    std::vector<float> C(size_t(N) * N);
    double Cpu = wallSeconds([&] { matMulRef(N, A, Bm, C); });
    double Gpu = bestGpuSeconds(App);
    T.addRow({"Matrix Multiplication", fmtDouble(Cpu * 1e3, 2),
              fmtDouble(Gpu * 1e3, 3), fmtDouble(Cpu / Gpu, 1) + "x",
              "6.98x"});
  }

  // CP.
  {
    CpApp App(CpProblem::bench());
    const CpProblem &P = App.problem();
    std::vector<float> Out(size_t(P.W) * P.H);
    double Cpu =
        wallSeconds([&] { cpRef(P.W, P.H, P.Spacing, App.atoms(), Out); });
    double Gpu = bestGpuSeconds(App);
    T.addRow({"CP", fmtDouble(Cpu * 1e3, 2), fmtDouble(Gpu * 1e3, 3),
              fmtDouble(Cpu / Gpu, 1) + "x", "647x"});
  }

  // SAD.
  {
    SadApp App(SadApp::benchProblem());
    const SadProblem &P = App.problem();
    std::vector<float> Cur =
        randomFloats(size_t(P.Width) * P.Height, 3, 0, 255);
    std::vector<float> Ref = randomFloats(
        size_t(P.paddedWidth()) * P.paddedHeight(), 4, 0, 255);
    std::vector<float> Out(size_t(P.numMacroblocks()) *
                           P.offsetsPerBlock());
    double Cpu = wallSeconds([&] { sadRef(P, Cur, Ref, Out); });
    double Gpu = bestGpuSeconds(App);
    T.addRow({"SAD", fmtDouble(Cpu * 1e3, 2), fmtDouble(Gpu * 1e3, 3),
              fmtDouble(Cpu / Gpu, 1) + "x", "5.51x"});
  }

  // MRI-FHD.
  {
    MriFhdApp App(MriProblem::bench());
    const MriProblem &P = App.problem();
    std::vector<float> X = randomFloats(P.NumVoxels, 5);
    std::vector<float> Y = randomFloats(P.NumVoxels, 6);
    std::vector<float> Z = randomFloats(P.NumVoxels, 7);
    std::vector<MriSample> Samples(P.NumSamples);
    Rng R(8);
    for (MriSample &S : Samples) {
      S.Kx = R.nextFloatIn(-0.5f, 0.5f);
      S.Ky = R.nextFloatIn(-0.5f, 0.5f);
      S.Kz = R.nextFloatIn(-0.5f, 0.5f);
      S.RhoR = R.nextFloatIn(-1, 1);
      S.RhoI = R.nextFloatIn(-1, 1);
    }
    std::vector<float> OutR(P.NumVoxels, 0), OutI(P.NumVoxels, 0);
    double Cpu =
        wallSeconds([&] { mriFhdRef(X, Y, Z, Samples, OutR, OutI); });
    double Gpu = bestGpuSeconds(App);
    T.addRow({"MRI-FHD", fmtDouble(Cpu * 1e3, 2), fmtDouble(Gpu * 1e3, 3),
              fmtDouble(Cpu / Gpu, 1) + "x", "228x"});
  }

  T.print(std::cout);
  std::cout << "\nExpected shape: CP and MRI-FHD (SFU-heavy, "
               "constant-cache-fed) dominate; MatMul and SAD sit one to "
               "two orders lower, as in the paper.\n";
  return 0;
}
