//===- support/Numeric.h - Strict numeric string parsing ------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict text-to-number parsing for command-line flags and record
/// fields.  Unlike atoi/atoll/atof — which silently turn garbage into
/// zero — these consume the *entire* input or return a Diagnostic, so
/// `tune search --jobs banana` is a usage error instead of a surprising
/// serial run.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SUPPORT_NUMERIC_H
#define G80TUNE_SUPPORT_NUMERIC_H

#include "support/Status.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace g80 {

/// Parses \p Text as a base-10 signed integer.  The whole string must be
/// consumed; leading/trailing whitespace is rejected.
Expected<int64_t> parseInt64(std::string_view Text);

/// Parses \p Text as a base-10 unsigned integer.
Expected<uint64_t> parseUint64(std::string_view Text);

/// Parses \p Text as a floating-point number (fixed or scientific).
Expected<double> parseDouble(std::string_view Text);

/// Parses a comma-separated integer list ("16,4,1").  Empty input and
/// empty elements ("1,,2") are errors.
Expected<std::vector<int>> parseIntList(std::string_view Text);

} // namespace g80

#endif // G80TUNE_SUPPORT_NUMERIC_H
