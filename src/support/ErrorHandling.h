//===- support/ErrorHandling.h - Fatal errors and unreachable ------------===//
//
// Part of g80tune, a reproduction of Ryoo et al., "Program Optimization
// Space Pruning for a Multithreaded GPU" (CGO 2008).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting used throughout the library.  The library does not
/// use exceptions; unrecoverable conditions (malformed IR handed to the
/// simulator, impossible machine descriptions, ...) abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_SUPPORT_ERRORHANDLING_H
#define G80TUNE_SUPPORT_ERRORHANDLING_H

namespace g80 {

/// Prints \p Reason to stderr and aborts.  Never returns.
[[noreturn]] void reportFatalError(const char *Reason);

/// Implementation detail of G80_UNREACHABLE.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace g80

/// Marks a point in code that should never be reached.  Unlike assert, this
/// is checked in all build modes: silently falling through an unhandled
/// opcode in the emulator or simulator would corrupt results rather than
/// crash, so we always pay for the check.
#define G80_UNREACHABLE(msg) ::g80::unreachableInternal(msg, __FILE__, __LINE__)

#endif // G80TUNE_SUPPORT_ERRORHANDLING_H
