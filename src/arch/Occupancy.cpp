//===- arch/Occupancy.cpp -------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arch/Occupancy.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace g80;

const char *g80::occupancyLimitName(OccupancyLimit Limit) {
  switch (Limit) {
  case OccupancyLimit::Blocks:
    return "blocks/SM";
  case OccupancyLimit::Threads:
    return "threads/SM";
  case OccupancyLimit::Registers:
    return "registers/SM";
  case OccupancyLimit::SharedMemory:
    return "shared memory/SM";
  case OccupancyLimit::Invalid:
    return "invalid";
  }
  G80_UNREACHABLE("unknown occupancy limit");
}

Occupancy g80::computeOccupancy(const MachineModel &Machine,
                                unsigned ThreadsPerBlock,
                                const KernelResources &Res) {
  Occupancy Result;
  if (ThreadsPerBlock == 0 || ThreadsPerBlock > Machine.MaxThreadsPerBlock)
    return Result;

  Result.WarpsPerBlock =
      (ThreadsPerBlock + Machine.WarpSize - 1) / Machine.WarpSize;

  // Register allocation is per-thread (the paper computes B_SM as
  // floor(8192 / (regs * threads))); shared memory is per-block.
  unsigned RegsPerBlock = Res.RegsPerThread * ThreadsPerBlock;

  unsigned Best = Machine.MaxBlocksPerSM;
  OccupancyLimit Limit = OccupancyLimit::Blocks;
  auto Constrain = [&](unsigned Bound, OccupancyLimit Kind) {
    if (Bound < Best) {
      Best = Bound;
      Limit = Kind;
    }
  };

  Constrain(Machine.MaxThreadsPerSM / ThreadsPerBlock,
            OccupancyLimit::Threads);
  if (RegsPerBlock > 0)
    Constrain(Machine.RegistersPerSM / RegsPerBlock,
              OccupancyLimit::Registers);
  if (Res.SharedMemPerBlockBytes > 0)
    Constrain(Machine.SharedMemPerSMBytes / Res.SharedMemPerBlockBytes,
              OccupancyLimit::SharedMemory);

  if (Best == 0)
    return Result; // Not even one block fits: invalid executable.

  Result.BlocksPerSM = Best;
  Result.ThreadsPerSM = Best * ThreadsPerBlock;
  Result.Limit = Limit;
  assert(Result.ThreadsPerSM <= Machine.MaxThreadsPerSM &&
         "occupancy exceeded the thread limit");
  return Result;
}

Expected<Occupancy>
g80::computeOccupancyChecked(const MachineModel &Machine,
                             unsigned ThreadsPerBlock,
                             const KernelResources &Res) {
  Occupancy Occ = computeOccupancy(Machine, ThreadsPerBlock, Res);
  if (Occ.valid())
    return Occ;
  std::string Msg;
  if (ThreadsPerBlock == 0 || ThreadsPerBlock > Machine.MaxThreadsPerBlock)
    Msg = "block of " + std::to_string(ThreadsPerBlock) +
          " threads violates the " +
          std::to_string(Machine.MaxThreadsPerBlock) + "-thread block limit";
  else
    Msg = "not even one block fits on an SM (" +
          std::to_string(Res.RegsPerThread) + " regs/thread, " +
          std::to_string(Res.SharedMemPerBlockBytes) + " shared bytes/block)";
  return makeDiag(ErrorCode::OccupancyInvalid, Stage::Occupancy,
                  std::move(Msg));
}
