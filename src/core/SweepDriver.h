//===- core/SweepDriver.h - Durable, resumable, isolated sweeps -----------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable sweep-execution layer.  A SweepDriver takes a SweepPlan
/// (the cheap static phase of a strategy) and runs the expensive
/// measurement phase with three protections the in-memory SearchEngine
/// loop lacks:
///
///  - **Write-ahead journal** (support/Journal.h): every completed
///    evaluation — measured or quarantined — is appended as a checksummed,
///    fsync'd record before the sweep moves on, so a SIGKILL/OOM/power
///    loss at any instant forfeits at most the configuration in flight.
///
///  - **Resume**: with SweepOptions::Resume, a journal whose fingerprint
///    header matches the plan is replayed — already-completed
///    configurations are restored (bit-identical times) and skipped; a
///    torn final record from the kill point is truncated away.  A journal
///    from a different app/machine/strategy/seed/injection is rejected.
///
///  - **Process isolation** (support/Subprocess.h): with
///    SweepOptions::Isolate, workers are forked per shard of candidates
///    and stream records back over a pipe.  A worker that segfaults,
///    exits nonzero, or blows its per-configuration wall-clock budget
///    costs only the in-flight configuration, which is retried once (with
///    backoff, in a fresh worker) before being quarantined as a
///    Simulate-stage WorkerCrashed/WorkerTimeout failure.  Where fork is
///    unavailable the sweep degrades to in-process execution with a
///    warning instead of failing.
///
/// SIGINT/SIGTERM during a driven sweep (see ScopedSweepSignalHandlers)
/// stop it at the next record boundary with SweepStatus::Interrupted; the
/// journal already holds everything completed, so `--resume` continues
/// where the interrupt landed.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_CORE_SWEEPDRIVER_H
#define G80TUNE_CORE_SWEEPDRIVER_H

#include "core/Search.h"
#include "support/Backoff.h"
#include "support/Journal.h"

#include <functional>
#include <string>
#include <vector>

namespace g80 {

/// One progress observation, emitted from the committer after every
/// completed (measured or quarantined) record.  Counts include
/// journal-resumed configurations, so Done/Total is the sweep's true
/// position; FreshDone excludes them, so rates computed from successive
/// observations reflect this run's throughput only.
struct SweepProgress {
  size_t Done = 0;       ///< Candidates completed, including resumed.
  size_t FreshDone = 0;  ///< Candidates completed by this run.
  size_t Total = 0;      ///< Planned candidates.
  size_t Quarantined = 0;
};

/// How a driven sweep should run.
struct SweepOptions {
  /// Journal file; empty disables durability.
  std::string JournalPath;
  /// Replay a matching journal instead of truncating it.
  bool Resume = false;
  /// Fork a worker per shard of candidates.
  bool Isolate = false;
  /// Wall-clock budget per in-flight configuration in a worker.
  double TaskTimeoutSeconds = 30.0;
  /// Candidates per forked worker.
  size_t ShardSize = 8;
  /// Total attempts a configuration gets in isolated workers before it is
  /// quarantined (2 = the original try plus one retry, the historical
  /// policy).  0 is treated as 1.
  unsigned MaxWorkerAttempts = 2;
  /// Pacing between attempts: exponential with deterministic jitter,
  /// salted by the configuration's flat index (see support/Backoff.h).
  BackoffPolicy RetryBackoff;
  /// Fingerprint written to (and checked against) the journal header.
  JournalHeader Fingerprint;
  /// Worker threads for the in-process measurement path (1 = serial).
  /// Workers measure candidates into disjoint slots while the calling
  /// thread commits results strictly in plan order, so the journal bytes,
  /// SearchOutcome totals, best-config tie-breaking, and quarantine
  /// accounting are bit-identical for every job count.  Ignored (with a
  /// warning when > 1) under Isolate — those workers are processes.
  unsigned Jobs = 1;
  /// Test hook: request a graceful interrupt (as SIGTERM would) after
  /// this many freshly committed records, 0 = never.  Lets tests land a
  /// deterministic mid-sweep kill point under any job count.
  size_t InterruptAfterRecords = 0;
  /// Observer called from the committer thread after each completed
  /// record (`tune search --progress`).  Runs strictly in plan order and
  /// must not mutate sweep state; it cannot affect results, journal
  /// bytes, or quarantine accounting.
  std::function<void(const SweepProgress &)> OnProgress;
  /// Per-sweep cancellation hook, polled wherever the global interrupt
  /// flag is polled (record boundaries, worker-poll slices).  Returning
  /// true stops this sweep with SweepStatus::Interrupted without touching
  /// the process-wide flag — how the serve daemon enforces per-request
  /// deadlines and drains without killing sibling sweeps.
  std::function<bool()> ShouldStop;
};

enum class SweepStatus : uint8_t {
  Completed,   ///< Every planned candidate was measured or quarantined.
  Interrupted, ///< SIGINT/SIGTERM (or requestSweepInterrupt) stopped it;
               ///< the journal makes it resumable.
  Error,       ///< Setup failed (stale/corrupt journal, I/O); no sweep ran.
};

/// A driven sweep's full story.
struct SweepReport {
  SweepStatus Status = SweepStatus::Completed;
  SearchOutcome Outcome;

  /// Configurations restored from the journal instead of re-measured.
  size_t ResumedSkipped = 0;
  /// In-flight configurations retried in a fresh worker after a
  /// crash/hang.
  size_t WorkerRetries = 0;
  /// Isolation was requested but fork is unavailable; ran in-process.
  bool DegradedInProcess = false;
  /// The resumed journal ended in a torn record that was dropped.
  bool TornTailDropped = false;
  /// Human-readable notes (degradation, retries, torn tail).
  std::vector<std::string> Warnings;
  /// Set when Status == Error.
  Diagnostic Error;
};

/// Runs a SweepPlan durably.  The engine must outlive the driver.
class SweepDriver {
public:
  SweepDriver(const SearchEngine &Engine, SweepOptions Opts)
      : Engine(Engine), Opts(std::move(Opts)) {}

  /// Executes the measurement phase of \p Plan under the configured
  /// durability/isolation regime.  Quarantined indices in the outcome are
  /// sorted (unlike SearchEngine's candidate-order lists) so interrupted
  /// + resumed runs compare equal to uninterrupted ones.
  SweepReport run(SweepPlan Plan) const;

private:
  const SearchEngine &Engine;
  SweepOptions Opts;
};

/// Bumps the sweep-interrupt counter that run() polls between records —
/// what the signal handlers call, exposed for tests.  The first request
/// asks for a graceful stop; a second is a force-quit escalation (see
/// sweepForceQuitRequested).
void requestSweepInterrupt();
/// Clears the counter (call before starting a fresh sweep).
void clearSweepInterrupt();
/// Whether at least one interrupt is pending (graceful stop).
bool sweepInterruptRequested();
/// Whether a second interrupt arrived while the first was being honored
/// — the operator insisting.  Long drains (the serve daemon's SIGTERM
/// handling) poll this to abandon graceful work and exit immediately;
/// everything journaled remains resumable.
bool sweepForceQuitRequested();

/// RAII: while alive, SIGINT and SIGTERM request a graceful sweep
/// interrupt instead of killing the process (a second signal escalates
/// to a force-quit request); previous dispositions are restored on
/// destruction.  The driver then flushes and reports
/// SweepStatus::Interrupted so the caller can exit with the distinct
/// "interrupted, resumable" code.
class ScopedSweepSignalHandlers {
public:
  ScopedSweepSignalHandlers();
  ~ScopedSweepSignalHandlers();
  ScopedSweepSignalHandlers(const ScopedSweepSignalHandlers &) = delete;
  ScopedSweepSignalHandlers &
  operator=(const ScopedSweepSignalHandlers &) = delete;

private:
  void *Saved = nullptr; ///< Opaque previous-disposition storage.
};

} // namespace g80

#endif // G80TUNE_CORE_SWEEPDRIVER_H
