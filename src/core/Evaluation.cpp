//===- core/Evaluation.cpp ------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Evaluation.h"

#include "analysis/Lint.h"
#include "analysis/Verifier.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>

using namespace g80;

void Evaluator::evaluateOne(ConfigEval &E) const {
  const uint64_t I = E.FlatIndex;
  const bool Injecting = Inject.enabled();

  E.Point = App.space().pointAt(I);
  E.Expressible = App.isExpressible(E.Point);
  if (!E.Expressible)
    return;

  // The generator stands in for the paper's source-to-source step;
  // Parse-stage faults can only come from the injector here (file input
  // goes through parseKernel in the tool instead).
  if (Injecting) {
    if (std::optional<Diagnostic> D = Inject.at(Stage::Parse, I)) {
      E.Failure = std::move(*D);
      return;
    }
  }

  std::shared_ptr<const Kernel> K;
  {
    // Kernel generation stands in for the paper's source-to-source +
    // nvcc -ptx step, hence the "parse" span name.
    TraceSpan Span("parse", I);
    K = std::make_shared<const Kernel>(App.buildKernel(E.Point));
  }

  {
    TraceSpan Span("verify", I);
    std::optional<Diagnostic> InjectedVerify =
        Injecting ? Inject.at(Stage::Verify, I) : std::nullopt;
    if (InjectedVerify) {
      E.Failure = std::move(*InjectedVerify);
    } else if (Expected<Unit> V = checkKernel(*K); !V) {
      E.Failure = V.takeDiag();
    }
  }
  if (E.failed())
    return;

  // The optional lint gate: statically proven races, contradicted
  // annotations and resource undershoots quarantine the configuration
  // before any metric or simulation work is spent on it.  Off by default
  // (a clean space must journal byte-identically with or without it).
  if (LOpts.Enabled) {
    TraceSpan Span("lint", I);
    std::optional<Diagnostic> InjectedLint =
        Injecting ? Inject.at(Stage::Lint, I) : std::nullopt;
    if (InjectedLint) {
      E.Failure = std::move(*InjectedLint);
    } else {
      LintResult L = runLint(*K, App.launch(E.Point));
      if (L.errorCount() > 0)
        E.Failure =
            makeDiag(lintErrorCode(L), Stage::Lint, lintErrorSummary(L));
    }
  }
  if (E.failed())
    return;

  if (Injecting) {
    if (std::optional<Diagnostic> D = Inject.at(Stage::Estimate, I)) {
      E.Failure = std::move(*D);
      return;
    }
  }

  {
    TraceSpan Span("metrics", I);
    E.Metrics = computeKernelMetrics(*K, App.launch(E.Point), Machine, MOpts);
  }
  E.Invocations = App.invocations(E.Point);
  if (E.Metrics.Valid)
    E.EfficiencyTotal =
        efficiencyMetric(E.Metrics.Profile.DynInstrs * E.Invocations,
                         E.Metrics.Threads);

  // Keep the verified kernel for measure(): the plan/measure split would
  // otherwise regenerate identical IR for every measured candidate.
  {
    std::lock_guard<std::mutex> L(CacheM);
    KernelMemo.emplace(I, std::move(K));
  }
}

std::vector<ConfigEval> Evaluator::evaluateMetrics(unsigned Jobs) const {
  {
    std::lock_guard<std::mutex> L(CacheM);
    if (MetricsMemo)
      return *MetricsMemo;
  }

  const ConfigSpace &Space = App.space();
  uint64_t Raw = Space.rawSize();

  std::vector<ConfigEval> Evals(Raw);
  for (uint64_t I = 0; I != Raw; ++I)
    Evals[I].FlatIndex = I;

  if (Jobs > 1 && Raw > 1) {
    ThreadPool Pool(std::min<uint64_t>(Jobs, Raw));
    // Chunk to amortize dispatch; each index writes only its own slot, so
    // the result is identical to the serial loop below.
    size_t Grain = std::max<size_t>(1, Raw / (size_t(Pool.size()) * 8));
    parallelFor(Pool, Raw, Grain,
                [&](size_t I) { evaluateOne(Evals[I]); });
  } else {
    for (uint64_t I = 0; I != Raw; ++I)
      evaluateOne(Evals[I]);
  }

  {
    std::lock_guard<std::mutex> L(CacheM);
    if (!MetricsMemo)
      MetricsMemo = std::make_shared<const std::vector<ConfigEval>>(Evals);
  }
  return Evals;
}

std::vector<uint64_t> Evaluator::expressibleIndices() const {
  {
    std::lock_guard<std::mutex> L(CacheM);
    if (ExpressibleMemo)
      return *ExpressibleMemo;
  }

  const ConfigSpace &Space = App.space();
  uint64_t Raw = Space.rawSize();
  std::vector<uint64_t> Out;
  for (uint64_t I = 0; I != Raw; ++I)
    if (App.isExpressible(Space.pointAt(I)))
      Out.push_back(I);

  std::lock_guard<std::mutex> L(CacheM);
  if (!ExpressibleMemo)
    ExpressibleMemo = std::make_shared<const std::vector<uint64_t>>(Out);
  return *ExpressibleMemo;
}

ConfigEval Evaluator::evaluateAt(uint64_t FlatIndex) const {
  {
    std::lock_guard<std::mutex> L(CacheM);
    auto It = PointMemo.find(FlatIndex);
    if (It != PointMemo.end())
      return It->second;
  }

  ConfigEval E;
  E.FlatIndex = FlatIndex;
  evaluateOne(E);

  std::lock_guard<std::mutex> L(CacheM);
  auto [It, Inserted] = PointMemo.emplace(FlatIndex, std::move(E));
  (void)Inserted;
  return It->second;
}

std::vector<ConfigEval>
Evaluator::evaluateSubset(const std::vector<uint64_t> &Indices,
                          unsigned Jobs) const {
  std::vector<ConfigEval> Evals(Indices.size());
  if (Jobs > 1 && Indices.size() > 1) {
    ThreadPool Pool(std::min<uint64_t>(Jobs, Indices.size()));
    size_t Grain =
        std::max<size_t>(1, Indices.size() / (size_t(Pool.size()) * 8));
    parallelFor(Pool, Indices.size(), Grain,
                [&](size_t I) { Evals[I] = evaluateAt(Indices[I]); });
  } else {
    for (size_t I = 0; I != Indices.size(); ++I)
      Evals[I] = evaluateAt(Indices[I]);
  }
  return Evals;
}

std::shared_ptr<const Kernel> Evaluator::kernelFor(const ConfigEval &E) const {
  {
    std::lock_guard<std::mutex> L(CacheM);
    auto It = KernelMemo.find(E.FlatIndex);
    if (It != KernelMemo.end())
      return It->second;
  }
  auto K = std::make_shared<const Kernel>(App.buildKernel(E.Point));
  std::lock_guard<std::mutex> L(CacheM);
  auto [It, Inserted] = KernelMemo.emplace(E.FlatIndex, std::move(K));
  (void)Inserted;
  return It->second;
}

bool Evaluator::measure(ConfigEval &E) const {
  assert(E.usable() && "measuring an unusable configuration");
  if (E.Measured)
    return true;

  if (Inject.enabled()) {
    if (std::optional<Diagnostic> D = Inject.at(Stage::Emulate, E.FlatIndex)) {
      E.Failure = std::move(*D);
      return false;
    }
    if (std::optional<Diagnostic> D = Inject.at(Stage::Simulate, E.FlatIndex)) {
      E.Failure = std::move(*D);
      return false;
    }
  }

  std::shared_ptr<const Kernel> K = kernelFor(E);
  TraceSpan Span("simulate", E.FlatIndex);
  // §5.3 screen short-circuit: when the metrics already classify the
  // configuration as bandwidth-bound, the analytic bound replaces cycle
  // simulation (opt-in; changes results, so tune folds it into the
  // journal fingerprint).
  Expected<SimResult> R =
      SOpts.BandwidthFastPath && E.Metrics.bandwidthBound()
          ? estimateBandwidthBoundKernel(*K, App.launch(E.Point), Machine,
                                         SOpts)
          : simulateKernel(*K, App.launch(E.Point), Machine, SOpts);
  if (!R) {
    E.Failure = R.takeDiag();
    return false;
  }
  E.Sim = *R;
  E.TimeSeconds = E.Sim.Seconds * static_cast<double>(E.Invocations);
  E.Measured = true;
  return true;
}
