//===- arch/Occupancy.h - Blocks-per-SM (B_SM) calculator -----------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes how many thread blocks an SM can host given a kernel's resource
/// usage — the quantity the paper derives from `nvcc -cubin` output plus the
/// Table 2 limits (§2.3, §4: "the runtime assigns the maximum number of
/// thread blocks possible to each SM, up to eight, without violating local
/// resource usage").
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_ARCH_OCCUPANCY_H
#define G80TUNE_ARCH_OCCUPANCY_H

#include "arch/MachineModel.h"
#include "support/Status.h"

namespace g80 {

/// Per-kernel resource usage, as a real toolchain's -cubin flag reports it.
struct KernelResources {
  unsigned RegsPerThread = 0;
  /// Shared memory per block, *including* the toolchain's parameter-block
  /// overhead (MachineModel::SharedMemBlockOverheadBytes); the resource
  /// estimator adds it.
  unsigned SharedMemPerBlockBytes = 0;
};

/// Which Table 2 limit determined (or invalidated) the occupancy result.
enum class OccupancyLimit {
  Blocks,       ///< Hit the 8-blocks/SM cap.
  Threads,      ///< Hit the 768-threads/SM cap.
  Registers,    ///< Hit the 8192-registers/SM cap.
  SharedMemory, ///< Hit the 16KB-shared/SM cap.
  Invalid,      ///< Not even one block fits (or block itself is illegal).
};

/// Returns a human-readable name for \p Limit.
const char *occupancyLimitName(OccupancyLimit Limit);

/// Result of the occupancy calculation.
struct Occupancy {
  unsigned BlocksPerSM = 0; ///< B_SM in the paper's Equation 2.
  unsigned WarpsPerBlock = 0; ///< W_TB in the paper's Equation 2.
  unsigned ThreadsPerSM = 0;
  OccupancyLimit Limit = OccupancyLimit::Invalid;

  bool valid() const { return BlocksPerSM > 0; }
  unsigned warpsPerSM() const { return BlocksPerSM * WarpsPerBlock; }
};

/// Computes B_SM and W_TB for a kernel with \p ThreadsPerBlock threads per
/// block and resource usage \p Res on machine \p Machine.
///
/// A configuration is Invalid when the block violates a per-block limit
/// (threads/block) or a single block already exceeds a per-SM limit — the
/// paper's Fig. 3 shows exactly this ("prefetching increased register usage
/// beyond what is available, producing an invalid executable").
Occupancy computeOccupancy(const MachineModel &Machine,
                           unsigned ThreadsPerBlock,
                           const KernelResources &Res);

/// Expected-returning form for the evaluation pipeline: an Invalid result
/// becomes a Diagnostic (Code OccupancyInvalid, Stage Occupancy) naming the
/// violated limit.  Plain computeOccupancy remains for metric plots, where
/// "invalid executable" is data rather than an error.
Expected<Occupancy> computeOccupancyChecked(const MachineModel &Machine,
                                            unsigned ThreadsPerBlock,
                                            const KernelResources &Res);

} // namespace g80

#endif // G80TUNE_ARCH_OCCUPANCY_H
