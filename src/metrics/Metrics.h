//===- metrics/Metrics.h - The paper's Efficiency/Utilization metrics ------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements §4 of the paper:
///
///   Efficiency  = 1 / (Instr * Threads)                          (Eq. 1)
///   Utilization = (Instr / Regions)
///               * [ (W_TB - 1)/2 + (B_SM - 1) * W_TB ]           (Eq. 2)
///
/// plus the bandwidth screen of §4 ¶2 / §5.3: the metrics predict relative
/// performance only for kernels that are not global-memory-bandwidth
/// bound, so bandwidth-bound configurations must be screened away before
/// the Pareto curve is drawn.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_METRICS_METRICS_H
#define G80TUNE_METRICS_METRICS_H

#include "arch/LaunchConfig.h"
#include "arch/MachineModel.h"
#include "arch/Occupancy.h"
#include "ptx/ResourceEstimator.h"
#include "ptx/StaticProfile.h"

#include <cstdint>

namespace g80 {

class Kernel;

/// Equation 1.  \p Threads is the total thread count of the launch.
double efficiencyMetric(uint64_t Instr, uint64_t Threads);

/// Variants of Equation 2's bracket term, for the ablation study of the
/// paper's "division by two ... captures the first order effects" choice.
enum class UtilizationVariant {
  /// The paper's formula: (W_TB - 1)/2 + (B_SM - 1) * W_TB.
  Paper,
  /// No halving of same-block warps: (W_TB - 1) + (B_SM - 1) * W_TB.
  NoSyncHalving,
  /// Only other blocks' warps help: (B_SM - 1) * W_TB.
  OtherBlocksOnly,
};

/// Equation 2 (or a variant of its bracket term).
double utilizationMetric(uint64_t Instr, uint64_t Regions,
                         unsigned WarpsPerBlock, unsigned BlocksPerSM,
                         UtilizationVariant Variant =
                             UtilizationVariant::Paper);

/// Everything the tuner needs to place one configuration on the
/// Efficiency/Utilization plot.
struct KernelMetrics {
  bool Valid = false; ///< False when not even one block fits on an SM.

  double Efficiency = 0;
  double Utilization = 0;

  // Inputs, kept for reporting.
  StaticProfile Profile;
  Occupancy Occ;
  KernelResources Resources;
  uint64_t Threads = 0;

  /// Ratio of demanded to available global-memory bandwidth at peak issue
  /// rate (see bandwidthDemandRatio below); > 1 means bandwidth-bound.
  double BandwidthDemandRatio = 0;
  bool bandwidthBound() const { return BandwidthDemandRatio > 1.0; }
};

/// Ratio of the kernel's global-memory traffic demand to the machine's
/// per-SM bandwidth share, assuming the SM issues at peak rate.
///
/// Demand = (effective DRAM bytes per thread / Instr)
///        * (threads issued per cycle at peak = WarpSize / issue cycles);
/// available = chip bandwidth / #SMs, in bytes per SP clock.  Effective
/// bytes include the coalescing multiplier — an uncoalesced access wastes
/// most of each 32-byte DRAM transaction, which is what makes the paper's
/// 8x8-tile matmul configurations bandwidth-bound (§5.3).
double bandwidthDemandRatio(const StaticProfile &Profile,
                            const MachineModel &Machine);

/// Options for computeKernelMetrics.
struct MetricOptions {
  UtilizationVariant Variant = UtilizationVariant::Paper;
  ResourceEstimatorOptions Resources;
};

/// One-stop computation: profile + resource estimate + occupancy +
/// Equations 1 and 2 + bandwidth screen, for kernel \p K launched with
/// \p Launch on \p Machine.
KernelMetrics computeKernelMetrics(const Kernel &K, const LaunchConfig &Launch,
                                   const MachineModel &Machine,
                                   const MetricOptions &Opts = {});

} // namespace g80

#endif // G80TUNE_METRICS_METRICS_H
