//===- ptx/StaticProfile.h - -ptx style execution profile -------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives the paper's per-thread execution profile from a kernel's
/// structured IR: the dynamic instruction count (`Instr` of Equation 1),
/// the count of blocking-delimited intervals (`Regions` of Equation 2),
/// the instruction mix, and global-memory traffic.  This replaces the
/// paper's manual workflow of reading `nvcc -ptx` output and annotating
/// loop trip counts (§4) — trip counts are IR annotations here.
///
/// Definitions (paper §4):
///  - Blocking instructions are global/local(texture-class) *loads* and
///    `bar.sync`; "sequences of independent, long-latency loads are
///    considered a unit" — a run of loads stays one unit until a barrier
///    or an instruction that consumes one of the outstanding loaded values
///    ends it.  Global stores are fire-and-forget on the G80 and do not
///    block.
///  - SFU instructions count as blocking only "when longer latency
///    operations are not present", i.e. in kernels with no dynamic global
///    loads and no barriers.
///  - Regions = dynamic blocking units + 1.
///  - Every loop iteration additionally executes 3 loop-control
///    instructions (counter add, setp, branch) that the structured Loop
///    node implies; full unrolling eliminates them, which is exactly the
///    instruction-count benefit the paper's unrolling study measures.
///
//===----------------------------------------------------------------------===//

#ifndef G80TUNE_PTX_STATICPROFILE_H
#define G80TUNE_PTX_STATICPROFILE_H

#include <cstdint>

namespace g80 {

class Kernel;

/// Dynamic instruction-control overhead charged per loop iteration
/// (counter add + setp + branch).  The timing simulator charges the same
/// three issues so metrics and ground truth agree on loop cost.
inline constexpr uint64_t LoopControlInstrsPerIter = 3;

/// Per-thread execution profile of a kernel.
struct StaticProfile {
  /// Dynamic instructions per thread — `Instr` in Equation 1.
  uint64_t DynInstrs = 0;
  /// Dynamic blocking units (load runs + barriers, or SFU ops for kernels
  /// with no loads/barriers).
  uint64_t BlockingUnits = 0;
  /// Blocking-delimited intervals — `Regions` in Equation 2.
  uint64_t regions() const { return BlockingUnits + 1; }

  // Instruction mix (dynamic, per thread).
  uint64_t AluInstrs = 0;       ///< Includes loop control.
  uint64_t SfuInstrs = 0;
  uint64_t SharedAccesses = 0;
  uint64_t ConstAccesses = 0;
  uint64_t GlobalLoads = 0;     ///< Includes local (spill) loads.
  uint64_t GlobalStores = 0;    ///< Includes local (spill) stores.
  uint64_t TextureLoads = 0;    ///< Cache-served, long-latency fetches.
  uint64_t Barriers = 0;

  /// Useful global bytes touched per thread (4 bytes per access).
  uint64_t GlobalBytesUseful = 0;
  /// Effective DRAM bytes per thread after coalescing effects (each
  /// access's EffBytesPerThread annotation).
  uint64_t GlobalBytesEffective = 0;

  /// Fraction of dynamic instructions that access global memory.
  double globalAccessFraction() const {
    if (DynInstrs == 0)
      return 0;
    return double(GlobalLoads + GlobalStores) / double(DynInstrs);
  }
};

/// Computes the per-thread profile of \p K.
///
/// Divergent if-regions charge both sides (a SIMD warp serializes through
/// them); uniform if-regions charge the then-side only.  Loop bodies are
/// analyzed once per distinct entry state, never once per iteration, so
/// cost is linear in IR size even for billion-iteration loops.
StaticProfile computeStaticProfile(const Kernel &K);

} // namespace g80

#endif // G80TUNE_PTX_STATICPROFILE_H
