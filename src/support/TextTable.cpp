//===- support/TextTable.cpp ----------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cassert>

using namespace g80;

void TextTable::setHeader(std::vector<std::string> Names) {
  assert(Header.empty() && Rows.empty() && "header must be set first");
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

void TextTable::print(std::ostream &OS) const {
  // Compute per-column widths over header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I != Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  auto PrintCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << Cell << std::string(Widths[I] - Cell.size(), ' ');
      if (I + 1 != Widths.size())
        OS << "  ";
    }
    OS << '\n';
  };

  size_t TotalWidth = Widths.empty() ? 0 : 2 * (Widths.size() - 1);
  for (size_t W : Widths)
    TotalWidth += W;

  if (!Header.empty()) {
    PrintCells(Header);
    OS << std::string(TotalWidth, '-') << '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      OS << std::string(TotalWidth, '-') << '\n';
    else
      PrintCells(R.Cells);
  }
}
