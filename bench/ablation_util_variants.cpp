//===- bench/ablation_util_variants.cpp - Equation 2's /2 term ----------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// §4: "We believe that the division by two in the first term in the
// bracket captures the first order effects."  This ablation swaps the
// bracket term of Equation 2 — the paper's (W-1)/2 + (B-1)W, a
// no-halving variant (W-1) + (B-1)W, and an other-blocks-only variant
// (B-1)W — and measures, for every application, whether the Pareto
// subset still contains the optimum and how many configurations it
// selects.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "kernels/Cp.h"
#include "kernels/MatMul.h"
#include "kernels/MriFhd.h"
#include "kernels/Sad.h"
#include "support/Format.h"
#include "support/TextTable.h"

#include <iostream>

using namespace g80;

static const char *variantName(UtilizationVariant V) {
  switch (V) {
  case UtilizationVariant::Paper:
    return "(W-1)/2 + (B-1)W  [paper]";
  case UtilizationVariant::NoSyncHalving:
    return "(W-1) + (B-1)W";
  case UtilizationVariant::OtherBlocksOnly:
    return "(B-1)W";
  }
  return "?";
}

static void addApp(TextTable &T, const TunableApp &App) {
  for (UtilizationVariant V :
       {UtilizationVariant::Paper, UtilizationVariant::NoSyncHalving,
        UtilizationVariant::OtherBlocksOnly}) {
    MetricOptions MOpts;
    MOpts.Variant = V;
    SearchEngine Engine(App, MachineModel::geForce8800Gtx(), MOpts);
    SearchOutcome Full = Engine.exhaustive();
    SearchOutcome Pruned = Engine.paretoPruned();
    bool Found = Pruned.BestTime <= Full.BestTime * 1.0000001;
    double Gap = Pruned.BestTime / Full.BestTime - 1.0;
    T.addRow({std::string(App.name()), variantName(V),
              fmtInt(uint64_t(Pruned.Candidates.size())),
              fmtPercent(Pruned.spaceReduction(), 0),
              Found ? "yes" : ("NO (+" + fmtPercent(Gap) + ")")});
  }
  T.addSeparator();
}

int main() {
  std::cout << "=== Ablation: Equation 2 bracket-term variants ===\n\n";
  TextTable T;
  T.setHeader({"Kernel", "Utilization bracket", "Selected",
               "Space reduction", "Optimum on curve"});
  {
    MatMulApp App(MatMulProblem::bench());
    addApp(T, App);
  }
  {
    CpApp App(CpProblem::bench());
    addApp(T, App);
  }
  {
    SadApp App(SadApp::benchProblem());
    addApp(T, App);
  }
  {
    MriFhdApp App(MriProblem::bench());
    addApp(T, App);
  }
  T.print(std::cout);
  return 0;
}
