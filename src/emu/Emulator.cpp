//===- emu/Emulator.cpp ---------------------------------------------------===//
//
// Part of g80tune.  SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "emu/Emulator.h"

#include "support/ErrorHandling.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string>

using namespace g80;

//===----------------------------------------------------------------------===//
// DeviceBuffer
//===----------------------------------------------------------------------===//

DeviceBuffer DeviceBuffer::zeroed(size_t NumWords) {
  DeviceBuffer B;
  B.Words.assign(NumWords, 0);
  return B;
}

DeviceBuffer DeviceBuffer::fromFloats(std::span<const float> Values) {
  DeviceBuffer B;
  B.Words.reserve(Values.size());
  for (float V : Values)
    B.Words.push_back(std::bit_cast<uint32_t>(V));
  return B;
}

DeviceBuffer DeviceBuffer::fromInts(std::span<const int32_t> Values) {
  DeviceBuffer B;
  B.Words.reserve(Values.size());
  for (int32_t V : Values)
    B.Words.push_back(std::bit_cast<uint32_t>(V));
  return B;
}

std::vector<float> DeviceBuffer::toFloats() const {
  std::vector<float> Out;
  Out.reserve(Words.size());
  for (uint32_t W : Words)
    Out.push_back(std::bit_cast<float>(W));
  return Out;
}

float DeviceBuffer::floatAt(size_t Index) const {
  return std::bit_cast<float>(Words[Index]);
}

int32_t DeviceBuffer::intAt(size_t Index) const {
  return std::bit_cast<int32_t>(Words[Index]);
}

//===----------------------------------------------------------------------===//
// LaunchBindings
//===----------------------------------------------------------------------===//

LaunchBindings::LaunchBindings(const Kernel &K)
    : Slots(K.params().size()) {}

void LaunchBindings::bindBuffer(unsigned ParamIndex, DeviceBuffer *Buf) {
  assert(ParamIndex < Slots.size() && "parameter index out of range");
  Slots[ParamIndex].Bound = true;
  Slots[ParamIndex].Buf = Buf;
}

void LaunchBindings::setF32(unsigned ParamIndex, float Value) {
  assert(ParamIndex < Slots.size() && "parameter index out of range");
  Slots[ParamIndex].Bound = true;
  Slots[ParamIndex].Scalar = std::bit_cast<uint32_t>(Value);
}

void LaunchBindings::setS32(unsigned ParamIndex, int32_t Value) {
  assert(ParamIndex < Slots.size() && "parameter index out of range");
  Slots[ParamIndex].Bound = true;
  Slots[ParamIndex].Scalar = std::bit_cast<uint32_t>(Value);
}

DeviceBuffer *LaunchBindings::buffer(unsigned ParamIndex) const {
  assert(ParamIndex < Slots.size() && "parameter index out of range");
  return Slots[ParamIndex].Buf;
}

uint32_t LaunchBindings::scalar(unsigned ParamIndex) const {
  assert(ParamIndex < Slots.size() && "parameter index out of range");
  return Slots[ParamIndex].Scalar;
}

Expected<Unit> LaunchBindings::checkComplete(const Kernel &K) const {
  for (unsigned I = 0; I != Slots.size(); ++I) {
    const ParamInfo &P = K.params()[I];
    bool NeedsBuffer = P.Kind == ParamKind::GlobalPtr ||
                       P.Kind == ParamKind::ConstPtr ||
                       P.Kind == ParamKind::TexPtr;
    if (!Slots[I].Bound || (NeedsBuffer && Slots[I].Buf == nullptr))
      return makeDiag(ErrorCode::EmulationFault, Stage::Emulate,
                      "kernel '" + K.name() + "' parameter '" + P.Name +
                          "' has no binding");
  }
  return Unit{};
}

//===----------------------------------------------------------------------===//
// Block executor
//===----------------------------------------------------------------------===//

namespace {

/// Executes one thread block in instruction lockstep.
class BlockExecutor {
public:
  BlockExecutor(const Kernel &K, const LaunchConfig &Launch,
                const LaunchBindings &Bindings, Dim3 BlockIdx,
                EmulationStats &Stats)
      : K(K), Launch(Launch), Bindings(Bindings), BlockIdx(BlockIdx),
        NumThreads(Launch.threadsPerBlock()), Stats(Stats) {
    Regs.assign(size_t(NumThreads) * K.numVRegs(), 0);
    Active.assign(NumThreads, 1);
    SharedMem.assign((K.sharedDataBytes() + 3) / 4, 0);
    LocalWordsPerThread = (K.localBytesPerThread() + 3) / 4;
    LocalMem.assign(size_t(NumThreads) * LocalWordsPerThread, 0);
  }

  /// Executes the block; returns false when a fault stopped it (the first
  /// fault is available via diag()).
  bool run() {
    execBody(K.body());
    if (failed())
      return false;
    Stats.Blocks += 1;
    return true;
  }

  bool failed() const { return Diag.isError(); }
  Diagnostic takeDiag() { return std::move(Diag); }

private:
  uint32_t &regRef(unsigned Thread, Reg R) {
    assert(R.isValid() && R.Id < K.numVRegs() && "register out of range");
    return Regs[size_t(Thread) * K.numVRegs() + R.Id];
  }

  uint32_t evalOperand(unsigned Thread, const Operand &O) {
    switch (O.kind()) {
    case Operand::Kind::None:
      G80_UNREACHABLE("evaluating a missing operand");
    case Operand::Kind::Reg:
      return regRef(Thread, O.getReg());
    case Operand::Kind::ImmF32:
      return std::bit_cast<uint32_t>(O.getImmF32());
    case Operand::Kind::ImmS32:
      return std::bit_cast<uint32_t>(O.getImmS32());
    case Operand::Kind::Special:
      return evalSpecial(Thread, O.getSpecial());
    case Operand::Kind::Param:
      return Bindings.scalar(O.getParamIndex());
    }
    G80_UNREACHABLE("unknown operand kind");
  }

  uint32_t evalSpecial(unsigned Thread, SpecialReg S) const {
    unsigned BX = Launch.Block.X, BY = Launch.Block.Y;
    switch (S) {
    case SpecialReg::TidX:
      return Thread % BX;
    case SpecialReg::TidY:
      return (Thread / BX) % BY;
    case SpecialReg::TidZ:
      return Thread / (BX * BY);
    case SpecialReg::CtaIdX:
      return BlockIdx.X;
    case SpecialReg::CtaIdY:
      return BlockIdx.Y;
    case SpecialReg::NTidX:
      return Launch.Block.X;
    case SpecialReg::NTidY:
      return Launch.Block.Y;
    case SpecialReg::NCtaIdX:
      return Launch.Grid.X;
    case SpecialReg::NCtaIdY:
      return Launch.Grid.Y;
    }
    G80_UNREACHABLE("unknown special register");
  }

  static float asF(uint32_t W) { return std::bit_cast<float>(W); }
  static int32_t asI(uint32_t W) { return std::bit_cast<int32_t>(W); }
  static uint32_t fromF(float V) { return std::bit_cast<uint32_t>(V); }
  static uint32_t fromI(int32_t V) { return std::bit_cast<uint32_t>(V); }

  /// Records the first fault; execution unwinds via the failed() checks in
  /// the exec loops (the library is exception-free).
  void fail(const char *What) {
    if (failed())
      return;
    Diag = makeDiag(ErrorCode::EmulationFault, Stage::Emulate,
                    "kernel '" + K.name() + "': " + What);
  }

  /// Resolves a memory operand to storage, or nullptr after recording a
  /// fault (misaligned / out-of-bounds access).
  uint32_t *memRef(unsigned Thread, const Instruction &I) {
    uint64_t Addr = I.AddrOffset;
    if (!I.AddrBase.isNone())
      Addr += evalOperand(Thread, I.AddrBase);
    if (Addr % 4 != 0) {
      fail("misaligned 32-bit memory access");
      return nullptr;
    }
    uint64_t WordIdx = Addr / 4;

    switch (I.Space) {
    case MemSpace::Global:
    case MemSpace::Const:
    case MemSpace::Texture: {
      DeviceBuffer *Buf = Bindings.buffer(I.BufferParam);
      if (WordIdx >= Buf->sizeWords()) {
        fail("global/const access out of bounds");
        return nullptr;
      }
      return &Buf->word(WordIdx);
    }
    case MemSpace::Shared: {
      const SharedArray &Arr = K.sharedArrays()[I.BufferParam];
      if (Addr >= Arr.Bytes) {
        fail("shared access out of array bounds");
        return nullptr;
      }
      return &SharedMem[(Arr.ByteOffset + Addr) / 4];
    }
    case MemSpace::Local: {
      if (WordIdx >= LocalWordsPerThread) {
        fail("local access out of bounds");
        return nullptr;
      }
      return &LocalMem[size_t(Thread) * LocalWordsPerThread + WordIdx];
    }
    }
    G80_UNREACHABLE("unknown memory space");
  }

  bool comparePasses(CmpKind Cmp, bool IsFloat, uint32_t A, uint32_t B) {
    if (IsFloat) {
      float X = asF(A), Y = asF(B);
      switch (Cmp) {
      case CmpKind::Eq:
        return X == Y;
      case CmpKind::Ne:
        return X != Y;
      case CmpKind::Lt:
        return X < Y;
      case CmpKind::Le:
        return X <= Y;
      case CmpKind::Gt:
        return X > Y;
      case CmpKind::Ge:
        return X >= Y;
      }
    } else {
      int32_t X = asI(A), Y = asI(B);
      switch (Cmp) {
      case CmpKind::Eq:
        return X == Y;
      case CmpKind::Ne:
        return X != Y;
      case CmpKind::Lt:
        return X < Y;
      case CmpKind::Le:
        return X <= Y;
      case CmpKind::Gt:
        return X > Y;
      case CmpKind::Ge:
        return X >= Y;
      }
    }
    G80_UNREACHABLE("unknown compare kind");
  }

  void execInstrForThread(unsigned T, const Instruction &I) {
    auto A = [&] { return evalOperand(T, I.A); };
    auto B = [&] { return evalOperand(T, I.B); };
    auto C = [&] { return evalOperand(T, I.C); };
    auto SetF = [&](float V) { regRef(T, I.Dst) = fromF(V); };
    auto SetI = [&](int32_t V) { regRef(T, I.Dst) = fromI(V); };
    auto SetW = [&](uint32_t V) { regRef(T, I.Dst) = V; };

    switch (I.Op) {
    case Opcode::Mov:
      SetW(A());
      return;
    case Opcode::AddF:
      SetF(asF(A()) + asF(B()));
      return;
    case Opcode::SubF:
      SetF(asF(A()) - asF(B()));
      return;
    case Opcode::MulF:
      SetF(asF(A()) * asF(B()));
      return;
    case Opcode::MadF: {
      // The G80 MAD truncates the intermediate product; we model the
      // arithmetic as unfused multiply-add, which matches the CPU
      // reference exactly.
      float Prod = asF(A()) * asF(B());
      SetF(Prod + asF(C()));
      return;
    }
    case Opcode::MinF:
      SetF(std::fmin(asF(A()), asF(B())));
      return;
    case Opcode::MaxF:
      SetF(std::fmax(asF(A()), asF(B())));
      return;
    case Opcode::AbsF:
      SetF(std::fabs(asF(A())));
      return;
    case Opcode::NegF:
      SetF(-asF(A()));
      return;
    case Opcode::AddI:
      SetI(asI(A()) + asI(B()));
      return;
    case Opcode::SubI:
      SetI(asI(A()) - asI(B()));
      return;
    case Opcode::MulI:
      SetI(static_cast<int32_t>(
          static_cast<int64_t>(asI(A())) * asI(B())));
      return;
    case Opcode::MadI:
      SetI(static_cast<int32_t>(static_cast<int64_t>(asI(A())) * asI(B()) +
                                asI(C())));
      return;
    case Opcode::MinI:
      SetI(std::min(asI(A()), asI(B())));
      return;
    case Opcode::MaxI:
      SetI(std::max(asI(A()), asI(B())));
      return;
    case Opcode::AbsI:
      SetI(std::abs(asI(A())));
      return;
    case Opcode::AndI:
      SetW(A() & B());
      return;
    case Opcode::OrI:
      SetW(A() | B());
      return;
    case Opcode::XorI:
      SetW(A() ^ B());
      return;
    case Opcode::ShlI:
      SetW(A() << (B() & 31));
      return;
    case Opcode::ShrI:
      SetW(A() >> (B() & 31));
      return;
    case Opcode::CvtFI:
      SetF(static_cast<float>(asI(A())));
      return;
    case Opcode::CvtIF:
      SetI(static_cast<int32_t>(asF(A())));
      return;
    case Opcode::SetPF:
      SetI(comparePasses(I.Cmp, /*IsFloat=*/true, A(), B()) ? 1 : 0);
      return;
    case Opcode::SetPI:
      SetI(comparePasses(I.Cmp, /*IsFloat=*/false, A(), B()) ? 1 : 0);
      return;
    case Opcode::SelP:
      SetW(C() != 0 ? A() : B());
      return;
    case Opcode::RcpF:
      SetF(1.0f / asF(A()));
      return;
    case Opcode::RsqrtF:
      SetF(1.0f / std::sqrt(asF(A())));
      return;
    case Opcode::SinF:
      SetF(std::sin(asF(A())));
      return;
    case Opcode::CosF:
      SetF(std::cos(asF(A())));
      return;
    case Opcode::Ld:
      if (uint32_t *P = memRef(T, I))
        SetW(*P);
      return;
    case Opcode::St:
      if (uint32_t *P = memRef(T, I))
        *P = A();
      return;
    case Opcode::Bar:
      // Handled in execBody (lockstep makes it a divergence check).
      return;
    }
    G80_UNREACHABLE("unknown opcode");
  }

  void execBody(const Body &B) {
    for (const BodyNode &N : B) {
      if (failed())
        return;
      if (N.isInstr()) {
        const Instruction &I = N.instr();
        if (I.isBarrier()) {
          // Lockstep already synchronizes; just enforce convergence.
          for (unsigned T = 0; T != NumThreads; ++T)
            if (!Active[T]) {
              fail("__syncthreads() inside divergent control flow");
              return;
            }
          Stats.ThreadInstrs += NumThreads;
          continue;
        }
        for (unsigned T = 0; T != NumThreads; ++T) {
          if (!Active[T])
            continue;
          execInstrForThread(T, I);
          if (failed())
            return;
          ++Stats.ThreadInstrs;
        }
      } else if (N.isLoop()) {
        const Loop &L = N.loop();
        for (uint64_t Trip = 0; Trip != L.TripCount && !failed(); ++Trip)
          execBody(L.LoopBody);
      } else {
        execIf(N.ifNode());
      }
    }
  }

  void execIf(const If &IfN) {
    std::vector<uint8_t> Saved = Active;
    // Then: threads whose predicate is nonzero.
    for (unsigned T = 0; T != NumThreads; ++T)
      Active[T] = Saved[T] && regRef(T, IfN.Pred) != 0;
    if (anyActive())
      execBody(IfN.Then);
    // Else: the complement.
    for (unsigned T = 0; T != NumThreads; ++T)
      Active[T] = Saved[T] && regRef(T, IfN.Pred) == 0;
    if (!IfN.Else.empty() && anyActive())
      execBody(IfN.Else);
    Active = std::move(Saved);
  }

  bool anyActive() const {
    for (uint8_t A : Active)
      if (A)
        return true;
    return false;
  }

  const Kernel &K;
  const LaunchConfig &Launch;
  const LaunchBindings &Bindings;
  Dim3 BlockIdx;
  unsigned NumThreads;
  EmulationStats &Stats;

  std::vector<uint32_t> Regs;
  std::vector<uint8_t> Active;
  std::vector<uint32_t> SharedMem;
  std::vector<uint32_t> LocalMem;
  unsigned LocalWordsPerThread = 0;

  Diagnostic Diag; ///< First fault; empty (Code None) while healthy.
};

} // namespace

Expected<EmulationStats> g80::emulateKernel(const Kernel &K,
                                            const LaunchConfig &Launch,
                                            const LaunchBindings &Bindings) {
  Expected<Unit> Bound = Bindings.checkComplete(K);
  if (!Bound)
    return Bound.takeDiag();
  if (Launch.threadsPerBlock() == 0 || Launch.numBlocks() == 0)
    return makeDiag(ErrorCode::EmulationFault, Stage::Emulate,
                    "kernel '" + K.name() + "': empty launch configuration");

  EmulationStats Stats;
  for (unsigned BY = 0; BY != Launch.Grid.Y; ++BY) {
    for (unsigned BX = 0; BX != Launch.Grid.X; ++BX) {
      BlockExecutor Exec(K, Launch, Bindings, Dim3(BX, BY), Stats);
      if (!Exec.run())
        return Exec.takeDiag();
    }
  }
  return Stats;
}
